// Return-address encryption (X) and decoys (D): structure, runtime
// correctness, and the security properties of §5.2.2 / §5.3.
#include <gtest/gtest.h>

#include <set>

#include "src/attack/experiments.h"
#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

// ---- Structural checks. ----

TEST(RaEncrypt, PrologueAndEpilogueCrypt) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  SymbolTable symbols;
  XkeyLayout xkeys;
  ASSERT_TRUE(ApplyRaEncryptPass(fn, symbols, &xkeys).ok());
  ASSERT_EQ(xkeys.symbol_offsets.size(), 1u);
  EXPECT_GE(symbols.Find("xkey$f"), 0);
  const auto& insts = fn.blocks()[0].insts;
  // mov xkey(%rip),%r11; xor %r11,(%rsp); ...; mov; xor; ret
  ASSERT_GE(insts.size(), 6u);
  EXPECT_EQ(insts[0].op, Opcode::kLoad);
  EXPECT_TRUE(insts[0].mem.rip_relative);
  EXPECT_EQ(insts[1].op, Opcode::kXorMR);
  EXPECT_TRUE(insts[1].mem.IsPlainRspAccess());
  EXPECT_EQ(insts[insts.size() - 1].op, Opcode::kRet);
  EXPECT_EQ(insts[insts.size() - 2].op, Opcode::kXorMR);
  EXPECT_EQ(insts[insts.size() - 3].op, Opcode::kLoad);
}

TEST(RaEncrypt, ReturnSitesZapped) {
  FunctionBuilder b("f");
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Emit(Instruction::CallSym(0));
  b.Emit(Instruction::AddRI(Reg::kRsp, 8));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  SymbolTable symbols;
  XkeyLayout xkeys;
  ASSERT_TRUE(ApplyRaEncryptPass(fn, symbols, &xkeys).ok());
  bool zap_after_call = false;
  const auto& insts = fn.blocks()[0].insts;
  for (size_t i = 0; i + 1 < insts.size(); ++i) {
    if (insts[i].IsCall() && insts[i + 1].op == Opcode::kStoreImm &&
        insts[i + 1].mem.base == Reg::kRsp && insts[i + 1].mem.disp == -8) {
      zap_after_call = true;
    }
  }
  EXPECT_TRUE(zap_after_call);
}

TEST(RaDecoy, EveryCallSitePairedWithTripwire) {
  FunctionBuilder b("f");
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Emit(Instruction::CallSym(0));
  b.Emit(Instruction::CallSym(1));
  b.Emit(Instruction::AddRI(Reg::kRsp, 8));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  Rng rng(3);
  DecoyStats stats;
  ASSERT_TRUE(ApplyRaDecoyPass(fn, rng, &stats).ok());
  EXPECT_EQ(stats.call_sites, 2u);
  EXPECT_EQ(stats.phantom_insts, 2u);
  // Each call is immediately preceded by the tripwire lea into %r11.
  for (const BasicBlock& blk : fn.blocks()) {
    for (size_t i = 0; i < blk.insts.size(); ++i) {
      if (blk.insts[i].IsCall()) {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(blk.insts[i - 1].op, Opcode::kLea);
        EXPECT_EQ(blk.insts[i - 1].r1, Reg::kR11);
        EXPECT_GE(blk.insts[i - 1].mem_label, 0);
      }
    }
  }
}

TEST(RaDecoy, BothVariantsAppearAcrossSeeds) {
  DecoyStats stats;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FunctionBuilder b("f");
    b.Emit(Instruction::MovRI(Reg::kRax, 1));
    b.Emit(Instruction::Ret());
    Function fn = b.Build();
    Rng rng(seed);
    ASSERT_TRUE(ApplyRaDecoyPass(fn, rng, &stats).ok());
  }
  EXPECT_GT(stats.variant_a_functions, 0u);
  EXPECT_GT(stats.variant_b_functions, 0u);
}

// ---- Runtime properties over the full kernel. ----

struct RaKernel {
  CompiledKernel kernel;
  std::unique_ptr<Cpu> cpu;
};

RaKernel Build(RaScheme scheme, uint64_t seed) {
  KernelSource src = MakeBaseSource();
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::DiversifyOnly(scheme, seed), LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  RaKernel rk{std::move(*kernel), nullptr};
  rk.cpu = std::make_unique<Cpu>(rk.kernel.image.get());
  return rk;
}

TEST(RaEncrypt, DeepCallChainReturnsCorrectly) {
  RaKernel rk = Build(RaScheme::kEncrypt, 21);
  RunResult r = rk.cpu->CallFunction("sys_deep_call", {0});
  EXPECT_EQ(r.reason, StopReason::kReturned);
}

TEST(RaDecoy, DeepCallChainReturnsCorrectly) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {  // cover both prologue variants
    RaKernel rk = Build(RaScheme::kDecoy, seed);
    RunResult r = rk.cpu->CallFunction("sys_deep_call", {0});
    EXPECT_EQ(r.reason, StopReason::kReturned) << "seed " << seed;
  }
}

TEST(RaEncrypt, NoCleartextReturnAddressRemnantsOnStack) {
  RaKernel rk = Build(RaScheme::kEncrypt, 33);
  rk.cpu->CallFunction("sys_deep_call", {0});
  ExploitLab lab(&rk.kernel);
  std::vector<uint64_t> sites_vec = lab.CollectReturnSites();
  std::set<uint64_t> sites(sites_vec.begin(), sites_vec.end());
  // Scan the CPU's stack memory for cleartext return sites. Only encrypted
  // values (or the harness sentinel) may remain.
  for (uint64_t a = rk.cpu->stack_base(); a + 8 <= rk.cpu->stack_top(); a += 8) {
    auto v = rk.kernel.image->Peek64(a);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(sites.count(*v), 0u) << "cleartext return address at 0x" << std::hex << a;
  }
}

TEST(RaDecoy, StackHoldsRealAndDecoyPairs) {
  RaKernel rk = Build(RaScheme::kDecoy, 44);
  rk.cpu->CallFunction("sys_deep_call", {0});
  ExploitLab lab(&rk.kernel);
  std::vector<uint64_t> sites_vec = lab.CollectReturnSites();
  std::set<uint64_t> sites(sites_vec.begin(), sites_vec.end());
  size_t pairs = 0;
  uint64_t prev = 0;
  for (uint64_t a = rk.cpu->stack_base(); a + 8 <= rk.cpu->stack_top(); a += 8) {
    auto v = rk.kernel.image->Peek64(a);
    ASSERT_TRUE(v.ok());
    bool prev_site = sites.count(prev) > 0;
    bool prev_code = prev >= kKrxCodeBase;
    bool cur_site = sites.count(*v) > 0;
    bool cur_code = *v >= kKrxCodeBase;
    // A pair: one real return site adjacent to one non-site code pointer.
    if ((prev_site && cur_code && !cur_site) || (cur_site && prev_code && !prev_site)) {
      ++pairs;
    }
    prev = *v;
  }
  EXPECT_GE(pairs, 5u);  // a 10-deep chain leaves plenty of pairs
}

TEST(RaEncrypt, SubstitutionAttackAlgebraHolds) {
  // §5.3: two activations of f from different call sites of g are encrypted
  // with the same xkey, so c1 ^ c2 == RS1 ^ RS2 — the key cancels and
  // ciphertext substitution among same-callee return sites is possible,
  // even though neither plaintext nor key is recoverable individually.
  //
  // f observes its own (encrypted) return address through a plain (%rsp)
  // read — the §5.3 race-hazard window made explicit.
  KernelSource src = MakeBaseSource();
  {
    FunctionBuilder f("subst_f");
    f.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRsp, 0)));
    f.Emit(Instruction::Ret());
    src.functions.push_back(f.Build());
    src.symbols.Intern("subst_f");

    FunctionBuilder g("subst_g");
    g.Emit(Instruction::SubRI(Reg::kRsp, 16));
    g.Emit(Instruction::CallSym(src.symbols.Intern("subst_f")));  // rax = c1
    g.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 8), Reg::kRax));
    g.Emit(Instruction::CallSym(src.symbols.Intern("subst_f")));  // rax = c2
    g.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 8)));
    g.Emit(Instruction::XorRR(Reg::kRax, Reg::kRcx));  // c1 ^ c2
    g.Emit(Instruction::AddRI(Reg::kRsp, 16));
    g.Emit(Instruction::Ret());
    src.functions.push_back(g.Build());
    src.symbols.Intern("subst_g");
  }
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, 55), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  Cpu cpu(kernel->image.get());
  RunResult r = cpu.CallFunction("subst_g", {});
  ASSERT_EQ(r.reason, StopReason::kReturned);
  const uint64_t c1_xor_c2 = r.rax;

  // Ground truth: the two return sites inside g.
  ExploitLab lab(&*kernel);
  int32_t g_sym = kernel->image->symbols().Find("subst_g");
  ASSERT_GE(g_sym, 0);
  const Symbol& g = kernel->image->symbols().at(g_sym);
  std::vector<uint64_t> g_sites;
  for (uint64_t site : lab.CollectReturnSites()) {
    if (site > g.address && site <= g.address + g.size) {
      g_sites.push_back(site);
    }
  }
  ASSERT_EQ(g_sites.size(), 2u);
  // The xkey cancels: c1 ^ c2 equals RS1 ^ RS2.
  EXPECT_EQ(c1_xor_c2, g_sites[0] ^ g_sites[1]);
  // And the ciphertexts themselves are not plaintext return sites.
  EXPECT_NE(c1_xor_c2, 0u);
}

TEST(RaEncrypt, RaceWindowIsOneToThreeInstructions) {
  // §5.3: the encryption scheme leaves the pushed return address in
  // cleartext only between the callq and the callee's xor (and briefly at
  // decryption) — "1-3 kR^X instructions". Probe the stack after every
  // retired instruction and measure the longest exposure streak.
  RaKernel rk = Build(RaScheme::kEncrypt, 77);
  ExploitLab lab(&rk.kernel);
  std::vector<uint64_t> sites_vec = lab.CollectReturnSites();
  std::set<uint64_t> sites(sites_vec.begin(), sites_vec.end());

  uint64_t streak = 0, longest = 0, exposed = 0, total = 0;
  rk.cpu->set_step_observer([&](const Cpu& c) {
    ++total;
    bool hit = false;
    uint64_t rsp = c.reg(Reg::kRsp);
    for (uint64_t a = rsp; a + 8 <= c.stack_top() && a < rsp + 512; a += 8) {
      auto v = rk.kernel.image->Peek64(a);
      if (v.ok() && sites.count(*v) > 0) {
        hit = true;
        break;
      }
    }
    if (hit) {
      ++exposed;
      streak = streak + 1;
      longest = std::max(longest, streak);
    } else {
      streak = 0;
    }
  });
  RunResult r = rk.cpu->CallFunction("sys_deep_call", {0});
  ASSERT_EQ(r.reason, StopReason::kReturned);
  EXPECT_GT(total, 100u);
  EXPECT_LE(longest, 3u);                 // the paper's window
  EXPECT_LT(exposed, total / 2);          // most of the run is protected
}

TEST(RaSchemes, WholeFunctionReuseStillWorks) {
  // §7.3: RA protection does not prevent whole-function reuse — calling
  // commit_creds by its entry point works under both schemes (the defense
  // restricts attackers to data-only/arity attacks on function pointers).
  for (RaScheme scheme : {RaScheme::kEncrypt, RaScheme::kDecoy}) {
    RaKernel rk = Build(scheme, 66);
    ExploitLab lab(&rk.kernel);
    auto commit = rk.kernel.image->symbols().AddressOf(kCommitCredsName);
    ASSERT_TRUE(commit.ok());
    lab.ResetCreds();
    std::vector<uint64_t> chain = {*commit, Cpu::kReturnSentinel};
    lab.cpu().set_reg(Reg::kRdi, kRootCred);
    lab.RunRopChain(chain);
    EXPECT_TRUE(lab.IsRoot());
  }
}

TEST(RaDecoy, TailCallSupport) {
  KernelSource src = MakeBaseSource();
  OpProfile p;
  p.name = "tailcall_op";
  p.loop_iters = 1;
  p.coalescible_reads = 2;
  p.calls = 1;
  p.leaf_depth = 2;
  p.tail_call_leaf = true;
  EmitKernelOp(&src, p);
  for (RaScheme scheme : {RaScheme::kDecoy, RaScheme::kEncrypt}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      auto kernel = CompileKernel(src, {ProtectionConfig::DiversifyOnly(scheme, seed), LayoutKind::kKrx});
      ASSERT_TRUE(kernel.ok());
      Cpu cpu(kernel->image.get());
      auto buf = SetUpOpBuffer(*kernel->image, 1);
      ASSERT_TRUE(buf.ok());
      RunResult r = cpu.CallFunction("sys_tailcall_op", {*buf});
      EXPECT_EQ(r.reason, StopReason::kReturned)
          << "scheme " << static_cast<int>(scheme) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace krx
