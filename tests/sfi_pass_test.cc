// Unit and property tests of the kR^X-SFI / kR^X-MPX instrumentation pass.
#include <gtest/gtest.h>

#include "src/attack/disclosure.h"
#include "src/attack/experiments.h"
#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"
#include "src/workload/fig2.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

constexpr int64_t kEdata = 0x7FFF0000;

struct PassResult {
  Function fn;
  SfiStats stats;
};

PassResult Apply(Function fn, SfiLevel level, bool mpx = false,
                 SpecMitigation spec = SpecMitigation::kNone) {
  SymbolTable symbols;
  int32_t handler = symbols.Intern(kKrxHandlerName);
  ProtectionConfig config;
  config.sfi = level;
  config.mpx = mpx;
  config.spec = spec;
  SfiStats stats;
  KRX_CHECK_OK(ApplySfiPass(fn, config, handler, kEdata, &stats));
  return {std::move(fn), stats};
}

size_t CountOp(const Function& fn, Opcode op) {
  size_t n = 0;
  for (const BasicBlock& b : fn.blocks()) {
    for (const Instruction& inst : b.insts) {
      if (inst.op == op) {
        ++n;
      }
    }
  }
  return n;
}

// ---- The Figure 2 regression: exact structure at each level. ----

TEST(SfiPass, Fig2O0WrapsEveryCheck) {
  PassResult r = Apply(MakeFig2Function(), SfiLevel::kO0);
  EXPECT_EQ(r.stats.checks_emitted, 3u);
  EXPECT_EQ(r.stats.wrappers_kept, 3u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kPushfq), 3u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kPopfq), 3u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kLea), 3u);
}

TEST(SfiPass, Fig2O1KeepsOnlyRc2Wrapper) {
  // Only the check between cmpl and jg needs %rflags preserved.
  PassResult r = Apply(MakeFig2Function(), SfiLevel::kO1);
  EXPECT_EQ(r.stats.wrappers_kept, 1u);
  EXPECT_EQ(r.stats.wrappers_eliminated, 2u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kPushfq), 1u);
}

TEST(SfiPass, Fig2O2EliminatesAllLeas) {
  PassResult r = Apply(MakeFig2Function(), SfiLevel::kO2);
  EXPECT_EQ(r.stats.lea_eliminated, 3u);
  EXPECT_EQ(r.stats.lea_kept, 0u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kLea), 0u);
  // cmp $(edata - disp), %rsi form.
  bool found = false;
  for (const BasicBlock& b : r.fn.blocks()) {
    for (const Instruction& inst : b.insts) {
      if (inst.IsRangeCheck() && inst.op == Opcode::kCmpRI && inst.r1 == Reg::kRsi &&
          inst.imm == kEdata - 0x154) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(SfiPass, Fig2O3CoalescesToSingleMaxDispCheck) {
  PassResult r = Apply(MakeFig2Function(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_emitted, 1u);
  EXPECT_EQ(r.stats.checks_coalesced, 2u);
  // The surviving check compares against edata - 0x154 (max displacement).
  size_t checks = 0;
  for (const BasicBlock& b : r.fn.blocks()) {
    for (const Instruction& inst : b.insts) {
      if (inst.IsRangeCheck() && inst.op == Opcode::kCmpRI) {
        ++checks;
        EXPECT_EQ(inst.imm, kEdata - 0x154);
      }
    }
  }
  EXPECT_EQ(checks, 1u);
}

TEST(SfiPass, Fig2MpxSingleBndcu) {
  PassResult r = Apply(MakeFig2Function(), SfiLevel::kO3, /*mpx=*/true);
  EXPECT_EQ(CountOp(r.fn, Opcode::kBndcu), 1u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kPushfq), 0u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kLea), 0u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kCallRel), 0u);  // no handler call: #BR traps
  for (const BasicBlock& b : r.fn.blocks()) {
    for (const Instruction& inst : b.insts) {
      if (inst.op == Opcode::kBndcu) {
        EXPECT_EQ(inst.mem.base, Reg::kRsi);
        EXPECT_EQ(inst.mem.disp, 0x154);
      }
    }
  }
}

// ---- Exemptions. ----

// ---- Speculation-hardening emission (spec-barrier / spec-mask axes). ----

TEST(SfiPassSpec, BarrierFencesEveryCheck) {
  PassResult r =
      Apply(MakeFig2Function(), SfiLevel::kO3, /*mpx=*/false, SpecMitigation::kBarrier);
  EXPECT_GT(r.stats.checks_emitted, 0u);
  EXPECT_EQ(r.stats.spec_barriers, r.stats.checks_emitted);
  EXPECT_EQ(CountOp(r.fn, Opcode::kSpecFence), r.stats.spec_barriers);
  EXPECT_EQ(CountOp(r.fn, Opcode::kMaskRI), 0u);
  // Every fence sits right behind the ja it is guarding: a window opened at
  // the branch dies before the checked load can execute transiently.
  for (const BasicBlock& blk : r.fn.blocks()) {
    for (size_t i = 0; i < blk.insts.size(); ++i) {
      if (blk.insts[i].op == Opcode::kSpecFence) {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(blk.insts[i - 1].op, Opcode::kJcc);
        EXPECT_EQ(blk.insts[i - 1].cond, Cond::kA);
      }
    }
  }
}

TEST(SfiPassSpec, MaskReplacesBranchyChecks) {
  PassResult r =
      Apply(MakeFig2Function(), SfiLevel::kO3, /*mpx=*/false, SpecMitigation::kMask);
  EXPECT_GT(r.stats.spec_masks, 0u);
  EXPECT_EQ(r.stats.spec_masks, r.stats.checks_emitted);
  EXPECT_EQ(CountOp(r.fn, Opcode::kMaskRI), r.stats.spec_masks);
  // The clamp is branchless and flag-free: no fences, no cmp/ja pairs, and
  // no pushfq/popfq wrappers survive anywhere in the function.
  EXPECT_EQ(CountOp(r.fn, Opcode::kSpecFence), 0u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kPushfq), 0u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kPopfq), 0u);
  for (const BasicBlock& blk : r.fn.blocks()) {
    for (const Instruction& inst : blk.insts) {
      if (inst.IsRangeCheck()) {
        EXPECT_TRUE(inst.op == Opcode::kMaskRI || inst.op == Opcode::kLea)
            << "branchy check survived under spec-mask";
      }
    }
  }
}

TEST(SfiPassSpec, BarrierCoversMpxChecksToo) {
  PassResult r =
      Apply(MakeFig2Function(), SfiLevel::kO3, /*mpx=*/true, SpecMitigation::kBarrier);
  EXPECT_GT(r.stats.spec_barriers, 0u);
  EXPECT_EQ(CountOp(r.fn, Opcode::kSpecFence), r.stats.spec_barriers);
  EXPECT_EQ(CountOp(r.fn, Opcode::kSpecFence), CountOp(r.fn, Opcode::kBndcu));
}

TEST(SfiPass, SafeAndRspReadsNotChecked) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::RipRel(0x100)));         // safe
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Absolute(0x4000)));      // safe
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 24)));   // guard-covered
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_emitted, 0u);
  EXPECT_EQ(r.stats.safe_reads, 2u);
  EXPECT_EQ(r.stats.rsp_reads, 1u);
  EXPECT_EQ(r.stats.max_rsp_disp, 24);
}

TEST(SfiPass, RspWithIndexIsChecked) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::BaseIndex(Reg::kRsp, Reg::kRdi, 8, 0)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_emitted, 1u);
  EXPECT_EQ(r.stats.lea_kept, 1u);  // indexed => lea form even at O3
}

// ---- String operations. ----

TEST(SfiPass, RepStringCheckedAfterNonRepBefore) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Movsq(/*rep=*/true));
  b.Emit(Instruction::Lodsq(/*rep=*/false));
  b.Emit(Instruction::Scasq(/*rep=*/true));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.string_checks, 3u);
  const auto& insts = r.fn.blocks()[0].insts;
  // rep movsq: check after; lodsq: check before; rep scasq: check after.
  std::vector<Opcode> ops;
  for (const Instruction& inst : insts) {
    ops.push_back(inst.op);
  }
  // Expected: movsq, [cmp ja], [cmp ja], lodsq, scasq, [cmp ja](on rdi), ret
  ASSERT_GE(ops.size(), 3u);
  EXPECT_EQ(ops[0], Opcode::kMovsq);  // the rep op comes first, check follows
  // Find scas check: must compare %rdi.
  bool rdi_check = false;
  for (const Instruction& inst : insts) {
    if (inst.IsRangeCheck() && inst.op == Opcode::kCmpRI && inst.r1 == Reg::kRdi) {
      rdi_check = true;
    }
  }
  EXPECT_TRUE(rdi_check);
}

// ---- Coalescing safety. ----

TEST(SfiPass, RedefinitionBlocksCoalescing) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::AddRI(Reg::kRdi, 64));  // redefines the base
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_emitted, 2u);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
}

TEST(SfiPass, SpillBlocksCoalescing) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRdi));  // spill
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
}

TEST(SfiPass, CallBlocksCoalescing) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::CallSym(0));
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
}

TEST(SfiPass, CoalescesAcrossDiamondWhenCheckedOnAllPaths) {
  // Both branch arms check %rdi; the join's read coalesces away.
  FunctionBuilder b("f");
  int32_t join = b.ReserveBlock();
  int32_t arm = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRsi, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, arm));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::JmpBlock(join));
  b.Bind(arm);
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 16)));
  b.Bind(join);
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 24)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_emitted, 2u);
  EXPECT_EQ(r.stats.checks_coalesced, 1u);
  // Both surviving checks were raised to the join's displacement (24).
  for (const BasicBlock& blk : r.fn.blocks()) {
    for (const Instruction& inst : blk.insts) {
      if (inst.IsRangeCheck() && inst.op == Opcode::kCmpRI && inst.r1 == Reg::kRdi) {
        EXPECT_EQ(inst.imm, kEdata - 24);
      }
    }
  }
}

TEST(SfiPass, NoCoalescingAcrossPartialPaths) {
  // Only one arm checks %rdi: the join must keep its own check.
  FunctionBuilder b("f");
  int32_t join = b.ReserveBlock();
  int32_t arm = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRsi, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, arm));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::JmpBlock(join));
  b.Bind(arm);
  b.Emit(Instruction::MovRI(Reg::kRax, 0));  // no check on this path
  b.Bind(join);
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 24)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_emitted, 2u);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
}

// ---- O4: cross-block congruence elision and loop hoisting. ----

// Returns every surviving range-check cmp immediate, across all blocks.
std::vector<int64_t> RangeCheckImms(const Function& fn) {
  std::vector<int64_t> imms;
  for (const BasicBlock& b : fn.blocks()) {
    for (const Instruction& inst : b.insts) {
      if (inst.IsRangeCheck() && inst.op == Opcode::kCmpRI) {
        imms.push_back(inst.imm);
      }
    }
  }
  return imms;
}

TEST(SfiPassO4, ElidesAcrossMovCongruence) {
  // mov %rdi, %rsi carries the checked value into a new register: the read
  // through %rsi is covered by the %rdi check once its bound is widened.
  auto make = [] {
    FunctionBuilder b("f");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
    b.Emit(Instruction::MovRR(Reg::kRsi, Reg::kRdi));
    b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRsi, 16)));
    b.Emit(Instruction::Ret());
    return b.Build();
  };
  PassResult o3 = Apply(make(), SfiLevel::kO3);
  EXPECT_EQ(o3.stats.checks_emitted, 2u);  // O3 cannot see through the mov
  PassResult o4 = Apply(make(), SfiLevel::kO4);
  EXPECT_EQ(o4.stats.checks_emitted, 1u);
  EXPECT_EQ(o4.stats.checks_coalesced, 1u);
  // The surviving %rdi check was widened to the congruent read's reach.
  EXPECT_EQ(RangeCheckImms(o4.fn), std::vector<int64_t>{kEdata - 16});
}

TEST(SfiPassO4, ElidesAfterNonNegativeAdd) {
  // `add $64, %rdi` kills O3 coalescing (RedefinitionBlocksCoalescing), but
  // O4 knows the new value is old + 64 and folds the second read into the
  // first check at displacement 64 + 16.
  auto make = [] {
    FunctionBuilder b("f");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
    b.Emit(Instruction::AddRI(Reg::kRdi, 64));
    b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
    b.Emit(Instruction::Ret());
    return b.Build();
  };
  PassResult o3 = Apply(make(), SfiLevel::kO3);
  EXPECT_EQ(o3.stats.checks_emitted, 2u);
  PassResult o4 = Apply(make(), SfiLevel::kO4);
  EXPECT_EQ(o4.stats.checks_emitted, 1u);
  EXPECT_EQ(RangeCheckImms(o4.fn), std::vector<int64_t>{kEdata - 80});
}

TEST(SfiPassO4, NegativeAddStillBlocksElision) {
  // Decrements may wrap below the checked bound under the unsigned compare,
  // so they must not transfer coverage even at O4.
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::AddRI(Reg::kRdi, -64));
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO4);
  EXPECT_EQ(r.stats.checks_emitted, 2u);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
}

TEST(SfiPassO4, ElidesAfterSubWhenDisplacementRestores) {
  // `sub $16, %rdi` derives a value *below* the checked one; the span domain
  // tracks the negative lower edge and proves the later displacement (24)
  // pulls the address back above the checked base, so the read folds into
  // the first check (effective displacement 24 - 16 = 8 <= 8).
  auto make = [] {
    FunctionBuilder b("f");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
    b.Emit(Instruction::SubRI(Reg::kRdi, 16));
    b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 24)));
    b.Emit(Instruction::Ret());
    return b.Build();
  };
  PassResult o3 = Apply(make(), SfiLevel::kO3);
  EXPECT_EQ(o3.stats.checks_emitted, 2u);
  PassResult o4 = Apply(make(), SfiLevel::kO4);
  EXPECT_EQ(o4.stats.checks_emitted, 1u);
  EXPECT_EQ(o4.stats.checks_coalesced, 1u);
  EXPECT_EQ(RangeCheckImms(o4.fn), std::vector<int64_t>{kEdata - 8});
}

TEST(SfiPassO4, SubPastDisplacementBlocksElision) {
  // `sub $64` followed by a read at +16 lands 48 bytes *below* the checked
  // address — that can wrap under the unsigned compare, so the elision must
  // be refused even though the span arithmetic is in range.
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::SubRI(Reg::kRdi, 64));
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO4);
  EXPECT_EQ(r.stats.checks_emitted, 2u);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
}

TEST(SfiPassO4, PartialPathChecksStay) {
  // The NoCoalescingAcrossPartialPaths property must survive O4: coverage
  // only flows through the meet when *every* predecessor provides it.
  FunctionBuilder b("f");
  int32_t join = b.ReserveBlock();
  int32_t arm = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRsi, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, arm));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::JmpBlock(join));
  b.Bind(arm);
  b.Emit(Instruction::MovRI(Reg::kRax, 0));  // no check on this path
  b.Bind(join);
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 24)));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO4);
  EXPECT_EQ(r.stats.checks_emitted, 2u);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
}

TEST(SfiPassO4, HoistsLoopInvariantCheckToPreheader) {
  // O3 keeps the check inside the loop (LoopHeaderChecksStay); O4 hoists it
  // into a fresh preheader, so it executes once instead of per iteration.
  auto make = [] {
    FunctionBuilder b("f");
    int32_t loop = b.ReserveBlock();
    b.Emit(Instruction::MovRI(Reg::kRcx, 10));
    b.Bind(loop);
    b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
    b.Emit(Instruction::SubRI(Reg::kRcx, 1));
    b.Emit(Instruction::JccBlock(Cond::kNe, loop));
    b.Emit(Instruction::Ret());
    return b.Build();
  };
  PassResult o3 = Apply(make(), SfiLevel::kO3);
  EXPECT_EQ(o3.stats.checks_emitted, 1u);
  EXPECT_EQ(o3.stats.checks_hoisted, 0u);
  PassResult o4 = Apply(make(), SfiLevel::kO4);
  EXPECT_EQ(o4.stats.checks_emitted, 1u);
  EXPECT_EQ(o4.stats.checks_hoisted, 1u);
  EXPECT_EQ(o4.stats.checks_coalesced, 1u);  // the in-loop site was absorbed
  // The surviving check covers the in-loop displacement and does not live
  // in the loop body (the block that decrements the counter).
  EXPECT_EQ(RangeCheckImms(o4.fn), std::vector<int64_t>{kEdata - 16});
  for (const BasicBlock& blk : o4.fn.blocks()) {
    bool in_loop = false;
    for (const Instruction& inst : blk.insts) {
      if (inst.op == Opcode::kSubRI) {
        in_loop = true;
      }
    }
    if (in_loop) {
      for (const Instruction& inst : blk.insts) {
        EXPECT_FALSE(inst.IsRangeCheck()) << "check left inside the loop";
      }
    }
  }
}

TEST(SfiPassO4, ClobberedBaseKeepsCheckInLoop) {
  // The base advances every iteration, so hoisting is unsound and the
  // widening pass must also refuse to elide: the check stays in the loop.
  FunctionBuilder b("f");
  int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRcx, 10));
  b.Bind(loop);
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::AddRI(Reg::kRdi, 8));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO4);
  EXPECT_EQ(r.stats.checks_hoisted, 0u);
  EXPECT_EQ(r.stats.checks_emitted, 1u);
  EXPECT_EQ(r.stats.checks_coalesced, 0u);
  // The check sits next to the load, inside the loop.
  for (const BasicBlock& blk : r.fn.blocks()) {
    bool has_load = false;
    bool has_check = false;
    for (const Instruction& inst : blk.insts) {
      has_load |= inst.op == Opcode::kLoad;
      has_check |= inst.IsRangeCheck() && inst.op == Opcode::kCmpRI;
    }
    EXPECT_EQ(has_load, has_check);
  }
}

TEST(SfiPassO4, CallInLoopBlocksHoisting) {
  FunctionBuilder b("f");
  int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRcx, 10));
  b.Bind(loop);
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::CallSym(0));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO4);
  EXPECT_EQ(r.stats.checks_hoisted, 0u);
  EXPECT_EQ(r.stats.checks_emitted, 1u);
}

// ---- O4 + callee-clobber summaries: call-transparent facts. ----

uint64_t RegBit(Reg r) { return uint64_t{1} << RegIndex(r); }

// Symbol id used for the summarized callee in the IR-level tests below.
// ApplySfiPass never resolves it — only the summary keys must match.
constexpr int32_t kLeafSym = 1;

PassResult ApplyO4WithClobbers(Function fn, const CalleeClobberSummary& clobbers) {
  SymbolTable symbols;
  int32_t handler = symbols.Intern(kKrxHandlerName);
  ProtectionConfig config;
  config.sfi = SfiLevel::kO4;
  SfiStats stats;
  KRX_CHECK_OK(ApplySfiPass(fn, config, handler, kEdata, &stats, &clobbers));
  return {std::move(fn), stats};
}

CalleeClobberSummary LeafSummary(uint64_t extra_mask = 0) {
  CalleeClobberSummary s;
  s.Set(kLeafSym, RegBit(kRangeCheckScratch) | RegBit(Reg::kRsp) | RegBit(Reg::kRax) |
                      extra_mask);
  return s;
}

Function MakeLoopWithCall() {
  // The CallInLoopBlocksHoisting shape: without a summary the call kills the
  // base fact and forces the check back into the loop body.
  FunctionBuilder b("f");
  int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRcx, 10));
  b.Bind(loop);
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::CallSym(kLeafSym));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::Ret());
  return b.Build();
}

TEST(SfiPassO4Clobber, NonClobberingCalleeAllowsLoopHoist) {
  PassResult r = ApplyO4WithClobbers(MakeLoopWithCall(), LeafSummary());
  EXPECT_EQ(r.stats.checks_hoisted, 1u);
  EXPECT_EQ(r.stats.checks_emitted, 1u);
  EXPECT_EQ(r.stats.checks_coalesced, 1u);
  // The loop body (the block with the counter decrement) carries no check.
  for (const BasicBlock& blk : r.fn.blocks()) {
    bool in_loop = false;
    for (const Instruction& inst : blk.insts) {
      in_loop |= inst.op == Opcode::kSubRI;
    }
    if (in_loop) {
      for (const Instruction& inst : blk.insts) {
        EXPECT_FALSE(inst.IsRangeCheck()) << "check left inside the loop";
      }
    }
  }
}

TEST(SfiPassO4Clobber, ClobberingCalleeStillBlocksHoist) {
  // Same loop, but the summary says the callee writes the base register —
  // hoisting would check a value the callee later replaces.
  PassResult r = ApplyO4WithClobbers(MakeLoopWithCall(), LeafSummary(RegBit(Reg::kRdi)));
  EXPECT_EQ(r.stats.checks_hoisted, 0u);
  EXPECT_EQ(r.stats.checks_emitted, 1u);
}

TEST(SfiPassO4Clobber, UnsummarizedCalleeStaysConservative) {
  // A summary that does not know the callee must behave exactly like the
  // no-summary path: MaskOf(unknown) == kAllRegs.
  CalleeClobberSummary empty;
  EXPECT_EQ(empty.MaskOf(kLeafSym), CalleeClobberSummary::kAllRegs);
  PassResult r = ApplyO4WithClobbers(MakeLoopWithCall(), empty);
  EXPECT_EQ(r.stats.checks_hoisted, 0u);
  EXPECT_EQ(r.stats.checks_emitted, 1u);
}

TEST(SfiPassO4Clobber, ElisionSurvivesNonClobberingCall) {
  // Straight-line: the first check covers disp 24; the call does not touch
  // %rdi, so the second (smaller-displacement) site is elided under the
  // surviving fact. Without a summary both sites emit checks.
  auto make = [] {
    FunctionBuilder b("f");
    b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 24)));
    b.Emit(Instruction::CallSym(kLeafSym));
    b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRdi, 16)));
    b.Emit(Instruction::Ret());
    return b.Build();
  };
  PassResult without = Apply(make(), SfiLevel::kO4);
  EXPECT_EQ(without.stats.checks_emitted, 2u);
  PassResult with = ApplyO4WithClobbers(make(), LeafSummary());
  EXPECT_EQ(with.stats.checks_emitted, 1u);
  EXPECT_EQ(with.stats.checks_coalesced, 1u);
  EXPECT_EQ(RangeCheckImms(with.fn), std::vector<int64_t>{kEdata - 24});
}

TEST(SfiPassO4Clobber, ComputeMasksTransitivityAndIndirect) {
  std::vector<Function> fns;
  SymbolTable symbols;
  const int32_t leaf = symbols.Intern("leaf");
  const int32_t wrapper = symbols.Intern("wrapper");
  const int32_t chaotic = symbols.Intern("chaotic");
  const int32_t saver = symbols.Intern("saver");
  {
    FunctionBuilder b("leaf");
    b.Emit(Instruction::MovRI(Reg::kRax, 1));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
  }
  {
    FunctionBuilder b("wrapper");
    b.Emit(Instruction::MovRI(Reg::kRbx, 2));
    b.Emit(Instruction::CallSym(leaf));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
  }
  {
    FunctionBuilder b("chaotic");
    b.Emit(Instruction::CallR(Reg::kRax));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
  }
  {
    // Callee-saved save/restore: the pop is a write under the §5.1.2 spill
    // rule — the restored value came through attacker-reachable memory.
    FunctionBuilder b("saver");
    b.Emit(Instruction::PushR(Reg::kRdi));
    b.Emit(Instruction::PopR(Reg::kRdi));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
  }
  CalleeClobberSummary s = ComputeCalleeClobbers(
      fns, [&symbols](const std::string& name) { return symbols.Intern(name); });
  const uint64_t forced = RegBit(kRangeCheckScratch) | RegBit(Reg::kRsp);
  EXPECT_EQ(s.MaskOf(leaf), RegBit(Reg::kRax) | forced);
  EXPECT_EQ(s.MaskOf(wrapper), RegBit(Reg::kRax) | RegBit(Reg::kRbx) | forced);
  EXPECT_EQ(s.MaskOf(chaotic), CalleeClobberSummary::kAllRegs);
  EXPECT_TRUE(s.MayClobber(saver, Reg::kRdi));
  EXPECT_TRUE(s.MayClobber(999, Reg::kRdi));  // unknown ids clobber everything
}

TEST(SfiPassO4Clobber, EndToEndElisionPassesPostLinkVerify) {
  // Whole-pipeline proof: the hoisted-over-a-call elision must be
  // independently re-provable by the byte-level verifier (the test binary
  // runs with KRX_POST_LINK_VERIFY=1, so CompileKernel fails otherwise),
  // and the program still computes the right value.
  KernelSource src = MakeBaseSource();
  {
    FunctionBuilder b("ccs_helper");
    b.Emit(Instruction::MovRI(Reg::kRbx, 7));
    b.Emit(Instruction::Ret());
    src.functions.push_back(b.Build());
    src.symbols.Intern("ccs_helper");
  }
  const int32_t helper_sym = src.symbols.Intern("ccs_helper");
  {
    FunctionBuilder b("ccs_caller");
    int32_t loop = b.ReserveBlock();
    b.Emit(Instruction::MovRI(Reg::kRcx, 4));
    b.Bind(loop);
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 16)));
    b.Emit(Instruction::CallSym(helper_sym));
    b.Emit(Instruction::SubRI(Reg::kRcx, 1));
    b.Emit(Instruction::JccBlock(Cond::kNe, loop));
    b.Emit(Instruction::Ret());
    src.functions.push_back(b.Build());
    src.symbols.Intern("ccs_caller");
  }
  auto kernel =
      CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO4), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  EXPECT_GE(kernel->stats.sfi.checks_hoisted, 1u);

  Cpu cpu(kernel->image.get());
  auto buf = kernel->image->AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(kernel->image->Poke64(*buf + 16, 0x1234).ok());
  auto caller = kernel->image->symbols().AddressOf("ccs_caller");
  ASSERT_TRUE(caller.ok());
  RunResult r = cpu.CallFunction(*caller, {*buf});
  ASSERT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 0x1234u);
}

TEST(SfiPass, LoopHeaderChecksStay) {
  // A check inside a loop cannot be absorbed by a pre-loop check.
  FunctionBuilder b("f");
  int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
  b.Bind(loop);
  b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRdi, 16)));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::Ret());
  PassResult r = Apply(b.Build(), SfiLevel::kO3);
  EXPECT_EQ(r.stats.checks_emitted, 2u);
}

// ---- Dynamic enforcement properties. ----

class EnforcementSweep : public ::testing::TestWithParam<int> {};

TEST_P(EnforcementSweep, AdversarialBaseRegistersAreAlwaysCaught) {
  // Build a full kernel under each level; call the leak routine with
  // addresses around every interesting boundary and verify reads above
  // _krx_edata never survive.
  const int param = GetParam();
  KernelSource src = MakeBaseSource();
  ProtectionConfig config;
  if (param == 0 || param == 6) {  // params 0/6 exercise the MPX flavour
    config.sfi = param == 0 ? SfiLevel::kO3 : SfiLevel::kO4;
    config.mpx = true;
  } else {
    config.sfi = static_cast<SfiLevel>(param);
  }
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  CpuOptions opts;
  opts.mpx_enabled = config.mpx;
  Cpu cpu(kernel->image.get(), CostModel(), opts);
  uint64_t edata = kernel->image->krx_edata();
  auto leak = kernel->image->symbols().AddressOf(kLeakSymbolName);
  ASSERT_TRUE(leak.ok());

  const PlacedSection* text = kernel->image->FindSection(".text");
  const uint64_t probes[] = {
      text->vaddr, text->vaddr + 1,  text->vaddr + text->size - 8,
      edata + 8,   kKrxCodeBase + 8, edata + (1ULL << 20),
  };
  for (uint64_t addr : probes) {
    RunResult r = cpu.CallFunction(*leak, {addr});
    bool stopped = r.krx_violation ||
                   (r.reason == StopReason::kException &&
                    r.exception == ExceptionKind::kBoundRange);
    EXPECT_TRUE(stopped) << "read of 0x" << std::hex << addr << " above edata survived";
  }
  // And reads below edata still work.
  auto cred = kernel->image->symbols().AddressOf(kCurrentCredName);
  ASSERT_TRUE(cred.ok());
  RunResult ok = cpu.CallFunction(*leak, {*cred});
  EXPECT_EQ(ok.reason, StopReason::kReturned);
}

std::string LevelName(const ::testing::TestParamInfo<int>& param_info) {
  static const char* const kNames[] = {"MPX", "O0", "O1", "O2", "O3", "O4", "MpxO4"};
  return kNames[param_info.param];
}

INSTANTIATE_TEST_SUITE_P(Levels, EnforcementSweep, ::testing::Values(0, 1, 2, 3, 4, 5, 6),
                         LevelName);

TEST(SfiPass, ExemptFunctionsSkipped) {
  KernelSource src = MakeBaseSource();
  ProtectionConfig config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  config.exempt_functions.insert(kLeakSymbolName);  // pretend it's a cloned memcpy
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  Cpu cpu(kernel->image.get());
  auto leak = kernel->image->symbols().AddressOf(kLeakSymbolName);
  ASSERT_TRUE(leak.ok());
  const PlacedSection* text = kernel->image->FindSection(".text");
  // The exempt routine can read code (that is what the ftrace/kprobes
  // clones are for).
  RunResult r = cpu.CallFunction(*leak, {text->vaddr});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_FALSE(r.krx_violation);
}

}  // namespace
}  // namespace krx
