// Encoding/decoding and static-property tests of the krx64 ISA, including a
// property-style roundtrip sweep over randomly generated instructions.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/isa/encoding.h"
#include "src/isa/instruction.h"

namespace krx {
namespace {

Instruction RoundTrip(const Instruction& inst) {
  std::vector<uint8_t> bytes;
  EncodeInstruction(inst, bytes);
  EXPECT_EQ(bytes.size(), EncodedSize(inst));
  auto dec = DecodeInstruction(bytes.data(), bytes.size(), 0);
  EXPECT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(dec->size, bytes.size());
  return dec->inst;
}

TEST(Encoding, RoundTripBasics) {
  EXPECT_EQ(RoundTrip(Instruction::Nop()).op, Opcode::kNop);
  EXPECT_EQ(RoundTrip(Instruction::MovRI(Reg::kRax, -1)).imm, -1);
  Instruction load = RoundTrip(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsi, 0x140)));
  EXPECT_EQ(load.op, Opcode::kLoad);
  EXPECT_EQ(load.r1, Reg::kRcx);
  EXPECT_EQ(load.mem.base, Reg::kRsi);
  EXPECT_EQ(load.mem.disp, 0x140);
}

TEST(Encoding, AbsoluteAddressesKeepFullWidth) {
  uint64_t addr = 0xFFFFFFFFC0001234ULL;
  Instruction inst = RoundTrip(Instruction::Load(Reg::kRax, MemOperand::Absolute(
                                                                static_cast<int64_t>(addr))));
  EXPECT_TRUE(inst.mem.is_absolute());
  EXPECT_EQ(static_cast<uint64_t>(inst.mem.disp), addr);
}

TEST(Encoding, RipRelativeRoundTrip) {
  Instruction inst = RoundTrip(Instruction::Load(Reg::kR11, MemOperand::RipRel(-0x2000)));
  EXPECT_TRUE(inst.mem.rip_relative);
  EXPECT_EQ(inst.mem.disp, -0x2000);
}

TEST(Encoding, IndexedOperandRoundTrip) {
  Instruction inst = RoundTrip(
      Instruction::Load(Reg::kRax, MemOperand::BaseIndex(Reg::kRdi, Reg::kR9, 8, 24)));
  EXPECT_EQ(inst.mem.index, Reg::kR9);
  EXPECT_EQ(inst.mem.scale, 8);
  EXPECT_EQ(inst.mem.disp, 24);
}

TEST(Encoding, InvalidOpcodeRejected) {
  uint8_t bytes[] = {0xFE, 0x00, 0x00};
  EXPECT_FALSE(DecodeInstruction(bytes, sizeof(bytes), 0).ok());
}

TEST(Encoding, TruncationRejected) {
  Instruction inst = Instruction::MovRI(Reg::kRax, 0x1234567890ABCDEF);
  std::vector<uint8_t> bytes;
  EncodeInstruction(inst, bytes);
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeInstruction(bytes.data(), cut, 0).ok()) << "cut=" << cut;
  }
}

TEST(Encoding, Int3IsSingleByte) {
  // The decoy tripwire relies on int3 decoding from a single byte embedded
  // inside a phantom instruction's immediate.
  EXPECT_EQ(EncodedSize(Instruction::Int3()), 1);
  uint8_t b = static_cast<uint8_t>(Opcode::kInt3);
  auto dec = DecodeInstruction(&b, 1, 0);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->inst.op, Opcode::kInt3);
}

TEST(Encoding, TripwireInsidePhantomImmediate) {
  uint64_t imm = 0xA5A5A5A5A5A5A500ULL | static_cast<uint64_t>(Opcode::kInt3);
  Instruction phantom = Instruction::MovRI(Reg::kR11, static_cast<int64_t>(imm));
  std::vector<uint8_t> bytes;
  EncodeInstruction(phantom, bytes);
  // Byte offset 2 = start of the immediate field.
  auto dec = DecodeInstruction(bytes.data(), bytes.size(), 2);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->inst.op, Opcode::kInt3);
}

class RoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripSweep, RandomInstructionsSurviveRoundTrip) {
  Rng rng(GetParam());
  auto random_reg = [&] { return static_cast<Reg>(rng.NextBelow(16)); };
  auto random_mem = [&] {
    switch (rng.NextBelow(4)) {
      case 0:
        return MemOperand::Base(random_reg(), rng.NextInRange(-1024, 1024));
      case 1:
        return MemOperand::BaseIndex(random_reg(), random_reg(),
                                     static_cast<uint8_t>(1u << rng.NextBelow(4)),
                                     rng.NextInRange(-64, 64));
      case 2:
        return MemOperand::RipRel(rng.NextInRange(-100000, 100000));
      default:
        return MemOperand::Absolute(rng.NextInRange(0, 1'000'000'000));
    }
  };
  for (int i = 0; i < 500; ++i) {
    Instruction inst;
    switch (rng.NextBelow(10)) {
      case 0: inst = Instruction::MovRR(random_reg(), random_reg()); break;
      case 1: inst = Instruction::MovRI(random_reg(), static_cast<int64_t>(rng.Next())); break;
      case 2: inst = Instruction::Load(random_reg(), random_mem()); break;
      case 3: inst = Instruction::Store(random_mem(), random_reg()); break;
      case 4: inst = Instruction::AddRI(random_reg(), rng.NextInRange(-100000, 100000)); break;
      case 5: inst = Instruction::CmpMI(random_mem(), rng.NextInRange(-1000, 1000)); break;
      case 6: inst = Instruction::Bndcu(random_mem()); break;
      case 7: inst = Instruction::Movsq(rng.NextBool()); break;
      case 8: inst = Instruction::PushR(random_reg()); break;
      default: inst = Instruction::XorMR(random_mem(), random_reg()); break;
    }
    Instruction back = RoundTrip(inst);
    EXPECT_TRUE(back == inst) << FormatInstruction(inst) << " vs " << FormatInstruction(back);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(InstructionProps, MemoryReadClassification) {
  EXPECT_TRUE(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)).ReadsMemory());
  EXPECT_TRUE(Instruction::CmpMI(MemOperand::Base(Reg::kRsi, 8), 1).ReadsMemory());
  EXPECT_TRUE(Instruction::XorMR(MemOperand::Base(Reg::kRsp, 0), Reg::kR11).ReadsMemory());
  EXPECT_TRUE(Instruction::CallM(MemOperand::Base(Reg::kRax, 0)).ReadsMemory());
  EXPECT_FALSE(Instruction::Store(MemOperand::Base(Reg::kRdi, 0), Reg::kRax).ReadsMemory());
  EXPECT_FALSE(Instruction::Lea(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)).ReadsMemory());
  EXPECT_FALSE(Instruction::Stosq().ReadsMemory());
  EXPECT_TRUE(Instruction::Movsq().ReadsMemory());
}

TEST(InstructionProps, SafeAndRspOperands) {
  EXPECT_TRUE(MemOperand::RipRel(100).IsSafeAddress());
  EXPECT_TRUE(MemOperand::Absolute(0x1000).IsSafeAddress());
  EXPECT_FALSE(MemOperand::Base(Reg::kRdi, 0).IsSafeAddress());
  EXPECT_TRUE(MemOperand::Base(Reg::kRsp, 16).IsPlainRspAccess());
  EXPECT_FALSE(MemOperand::BaseIndex(Reg::kRsp, Reg::kRax, 8, 0).IsPlainRspAccess());
}

TEST(InstructionProps, FlagsClassification) {
  EXPECT_TRUE(Instruction::CmpRI(Reg::kRax, 1).WritesFlags());
  EXPECT_TRUE(Instruction::JccBlock(Cond::kA, 0).ReadsFlags());
  EXPECT_TRUE(Instruction::Pushfq().ReadsFlags());
  EXPECT_TRUE(Instruction::Popfq().WritesFlags());
  EXPECT_FALSE(Instruction::Bndcu(MemOperand::Base(Reg::kRdi, 0)).WritesFlags());
  EXPECT_FALSE(Instruction::MovRR(Reg::kRax, Reg::kRbx).WritesFlags());
  // Calls clobber flags (callee does not preserve them).
  EXPECT_TRUE(Instruction::CallSym(0).WritesFlags());
  // repe cmpsq consults ZF.
  EXPECT_TRUE(Instruction::Cmpsq(true).ReadsFlags());
  EXPECT_FALSE(Instruction::Cmpsq(false).ReadsFlags());
}

TEST(InstructionProps, StringReadBases) {
  EXPECT_EQ(Instruction::Movsq().StringReadBase(), Reg::kRsi);
  EXPECT_EQ(Instruction::Lodsq().StringReadBase(), Reg::kRsi);
  EXPECT_EQ(Instruction::Cmpsq().StringReadBase(), Reg::kRsi);
  EXPECT_EQ(Instruction::Scasq().StringReadBase(), Reg::kRdi);
  EXPECT_EQ(Instruction::Nop().StringReadBase(), Reg::kNone);
}

TEST(InstructionProps, RegReadsWrites) {
  Reg regs[6];
  int count = 0;
  InstructionRegWrites(Instruction::PopR(Reg::kRdi), regs, &count);
  EXPECT_EQ(count, 2);  // rdi and rsp
  InstructionRegReads(Instruction::Store(MemOperand::Base(Reg::kRbx, 8), Reg::kRax), regs,
                      &count);
  EXPECT_EQ(count, 2);  // rax (value) and rbx (base)
  InstructionRegWrites(Instruction::Movsq(true), regs, &count);
  EXPECT_EQ(count, 3);  // rsi, rdi, rcx
}

TEST(InstructionProps, Formatting) {
  EXPECT_EQ(FormatInstruction(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsi, 0x140))),
            "mov 0x140(%rsi),%rcx");
  EXPECT_EQ(FormatInstruction(Instruction::CmpRI(Reg::kRsi, 0x7f)), "cmp $0x7f,%rsi");
  EXPECT_EQ(FormatInstruction(Instruction::Ret()), "retq");
  EXPECT_EQ(FormatInstruction(Instruction::Bndcu(MemOperand::Base(Reg::kRsi, 0x154))),
            "bndcu 0x154(%rsi),%bnd0");
}

}  // namespace
}  // namespace krx
