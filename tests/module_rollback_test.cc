// Transactional module loading: a failure interposed before every load step
// must roll the image back completely (address space, page tables, symbol
// namespace, physmap synonyms — re-proven by the src/verify checker), and
// unloading must destroy the module's text and key material.
#include <gtest/gtest.h>

#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/kernel/assembler.h"
#include "src/plugin/pipeline.h"
#include "src/verify/verifier.h"
#include "src/workload/corpus.h"

namespace krx {
namespace {

struct Env {
  CompiledKernel kernel;
  std::unique_ptr<ModuleLoader> loader;
  std::unique_ptr<Cpu> cpu;
  uint64_t buf = 0;
};

Env MakeEnv(uint64_t seed) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, seed), LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  Env env{std::move(*kernel), nullptr, nullptr, 0};
  env.loader = std::make_unique<ModuleLoader>(env.kernel.image.get());
  env.cpu = std::make_unique<Cpu>(env.kernel.image.get());
  auto buf = env.kernel.image->AllocDataPages(1);
  KRX_CHECK(buf.ok());
  env.buf = *buf;
  KRX_CHECK(env.kernel.image->Poke64(env.buf, 100).ok());
  return env;
}

// A module with a function AND a data object, so every load step executes
// (alloc-data / place-data are skipped for data-less modules).
Result<ModuleObject> MakeProbeModule(Env& env, const std::string& name) {
  SymbolTable& symbols = env.kernel.image->symbols();
  FunctionBuilder b(name + "_fn");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
  b.Emit(Instruction::AddRI(Reg::kRax, 7));
  b.Emit(Instruction::Ret());
  std::vector<Function> fns;
  fns.push_back(b.Build());
  symbols.Intern(name + "_fn");
  DataObject state;
  state.name = name + "_state";
  state.kind = SectionKind::kData;
  state.bytes.assign(32, 0xa5);
  std::vector<DataObject> data;
  data.push_back(std::move(state));
  return CompileModule(name, std::move(fns), std::move(data), symbols, env.kernel.config);
}

class FailpointSweep : public ::testing::TestWithParam<int> {};

TEST_P(FailpointSweep, LoadFailureRollsBackCompletely) {
  const ModuleLoadStep step = static_cast<ModuleLoadStep>(GetParam());
  Env env = MakeEnv(5);
  KernelImage& image = *env.kernel.image;
  auto mod = MakeProbeModule(env, "roll");
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  ASSERT_GT(mod->xkey_bytes, 0u);  // encrypted config: replenish step runs

  const size_t pages_before = image.page_table().MappedPageCount();
  const auto cursors_before = image.module_cursors();
  const size_t sections_before = image.sections().size();

  env.loader->set_failpoint(step);
  auto failed = env.loader->Load(*mod);
  env.loader->clear_failpoint();
  ASSERT_FALSE(failed.ok()) << "failpoint before " << ModuleLoadStepName(step)
                            << " did not fail the load";
  EXPECT_NE(failed.status().message().find(ModuleLoadStepName(step)), std::string::npos);

  // Total rollback: address space, page tables, sections, symbols.
  EXPECT_EQ(image.page_table().MappedPageCount(), pages_before);
  EXPECT_EQ(image.module_cursors().text, cursors_before.text);
  EXPECT_EQ(image.module_cursors().data, cursors_before.data);
  EXPECT_EQ(image.sections().size(), sections_before);
  EXPECT_EQ(env.loader->module_count(), 0u);
  EXPECT_FALSE(image.symbols().AddressOf("roll_fn").ok());
  EXPECT_FALSE(image.symbols().AddressOf("roll_state").ok());
  EXPECT_TRUE(image.page_table().FindWxViolations().empty());

  // The rolled-back image still proves the full protection contract.
  VerifyReport report = VerifyImage(image, VerifyOptions::ForConfig(env.kernel.config));
  EXPECT_TRUE(report.ok()) << report.Summary(8);

  // The failure was transient: the same module now loads and runs.
  auto handle = env.loader->Load(*mod);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  RunResult r = env.cpu->CallFunction("roll_fn", {env.buf});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 107u);
  EXPECT_TRUE(env.loader->Unload(*handle).ok());
}

INSTANTIATE_TEST_SUITE_P(Steps, FailpointSweep,
                         ::testing::Range(0, static_cast<int>(ModuleLoadStep::kNumSteps)));

TEST(ModuleUnload, ZapsTextAndZeroesXkeys) {
  Env env = MakeEnv(9);
  KernelImage& image = *env.kernel.image;
  auto mod = MakeProbeModule(env, "zap");
  ASSERT_TRUE(mod.ok());
  auto handle = env.loader->Load(*mod);
  ASSERT_TRUE(handle.ok());
  const LoadedModule lm = env.loader->module(*handle);  // copy before unload
  ASSERT_GT(lm.xkey_bytes, 0u);

  auto key_addr = image.symbols().AddressOf("xkey$zap_fn");
  ASSERT_TRUE(key_addr.ok());
  auto key = image.Peek64(*key_addr);
  ASSERT_TRUE(key.ok());
  EXPECT_NE(*key, 0u);

  ASSERT_TRUE(env.loader->Unload(*handle).ok());

  // The text vaddr is gone from the code region...
  EXPECT_FALSE(image.Peek64(lm.text_vaddr).ok());
  EXPECT_FALSE(image.symbols().AddressOf("zap_fn").ok());
  // ...and the frames themselves hold no code: the body is filled with the
  // tripwire pad byte and the xkey tail is zeroed outright.
  const uint64_t base = lm.text_first_frame << kPageShift;
  const uint64_t xkeys_start = lm.text_size - lm.xkey_bytes;
  for (uint64_t off = 0; off < xkeys_start; ++off) {
    ASSERT_EQ(image.phys().Read8(base + off), kTextPadByte) << "offset " << off;
  }
  for (uint64_t off = xkeys_start; off < lm.text_size; ++off) {
    ASSERT_EQ(image.phys().Read8(base + off), 0) << "xkey offset " << off;
  }

  // Physmap synonyms of the reclaimed text frames are readable again.
  for (uint64_t p = 0; p < lm.text_pages; ++p) {
    const Pte* pte = image.page_table().Lookup(image.PhysmapVaddr(lm.text_first_frame + p));
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->flags.present);
  }
}

TEST(ModuleReload, FailThenLoadThenUnloadLeavesNoResidue) {
  Env env = MakeEnv(13);
  KernelImage& image = *env.kernel.image;
  const size_t pages_start = image.page_table().MappedPageCount();
  const size_t sections_start = image.sections().size();

  // Several generations of fail → load → run → unload; invariants must hold
  // at every boundary.
  for (int gen = 0; gen < 3; ++gen) {
    const std::string name = "gen" + std::to_string(gen);
    auto mod = MakeProbeModule(env, name);
    ASSERT_TRUE(mod.ok());
    env.loader->set_failpoint(static_cast<ModuleLoadStep>(
        gen % static_cast<int>(ModuleLoadStep::kNumSteps)));
    ASSERT_FALSE(env.loader->Load(*mod).ok());
    env.loader->clear_failpoint();
    auto handle = env.loader->Load(*mod);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    RunResult r = env.cpu->CallFunction(name + "_fn", {env.buf});
    ASSERT_EQ(r.reason, StopReason::kReturned);
    EXPECT_EQ(r.rax, 107u);
    ASSERT_TRUE(env.loader->Unload(*handle).ok());
    EXPECT_EQ(image.sections().size(), sections_start);
    VerifyReport report = VerifyImage(image, VerifyOptions::ForConfig(env.kernel.config));
    ASSERT_TRUE(report.ok()) << "generation " << gen << ":\n" << report.Summary(8);
  }
  // Unload does not reclaim module address space (bump cursors), but it must
  // return every mapped page.
  EXPECT_EQ(image.page_table().MappedPageCount(), pages_start);
}

}  // namespace
}  // namespace krx
