// Address-space layout invariants (§5.1.1): region disjointness, the
// -mcmodel=kernel reachability constraints, and DESIGN.md's layout
// properties checked on actual builds.
#include <gtest/gtest.h>

#include "src/kernel/layout.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"

namespace krx {
namespace {

TEST(LayoutConstants, RegionsAreOrderedAndDisjoint) {
  // Lower canonical-half regions, in order.
  EXPECT_LT(kPhysmapBase, kVmallocBase);
  EXPECT_LT(kVmallocBase, kVmemmapBase);
  EXPECT_LT(kVmemmapBase, kImageBase);
  // kR^X-KAS data regions below the code base.
  EXPECT_LT(kImageBase, kKrxModulesDataBase);
  EXPECT_LE(kKrxModulesDataBase + kKrxModulesDataLen, kKrxFixmapBase);
  EXPECT_LT(kKrxFixmapBase, kKrxCodeBase);
  EXPECT_LT(kKrxCodeBase, kKrxModulesTextBase);
  // modules_text ends exactly at the top of the address space.
  EXPECT_EQ(kKrxModulesTextBase + kKrxModulesTextLen, 0u);
}

TEST(LayoutConstants, KernelImageRegionsFitTheCodeModel) {
  // -mcmodel=kernel: rip-relative disp32 and sign-extended imm32 must reach
  // everything in the image/module regions — i.e. the top 2GB.
  constexpr uint64_t kTop2G = 0xFFFFFFFF80000000ULL;
  EXPECT_GE(kImageBase, kTop2G);
  EXPECT_GE(kKrxModulesDataBase, kTop2G);
  EXPECT_GE(kKrxCodeBase, kTop2G);
  EXPECT_GE(kKrxModulesTextBase, kTop2G);
  EXPECT_GE(kVanillaModulesBase, kTop2G);
  // So _krx_edata survives the sign-extended-imm32 range-check encoding.
  int64_t edata = ComputeEdata(kDefaultPhantomGuardSize);
  EXPECT_GE(edata, static_cast<int64_t>(INT32_MIN));
  EXPECT_LT(edata, 0);  // upper canonical half
}

TEST(Layout, KrxBuildSeparatesCodeAndData) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 2), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  uint64_t edata = kernel->image->krx_edata();
  for (const PlacedSection& s : kernel->image->sections()) {
    bool in_code = s.vaddr >= edata;
    if (SectionKindIsCodeRegion(s.kind) || s.kind == SectionKind::kPhantomGuard) {
      EXPECT_TRUE(in_code) << s.name;
    } else {
      EXPECT_FALSE(in_code) << s.name;
    }
    // No section straddles _krx_edata.
    EXPECT_TRUE(s.vaddr + s.mapped_size <= edata || s.vaddr >= edata) << s.name;
  }
}

TEST(Layout, VanillaBuildInterleavesWithinTheImage) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(kernel.ok());
  const PlacedSection* text = kernel->image->FindSection(".text");
  const PlacedSection* data = kernel->image->FindSection(".data");
  ASSERT_TRUE(text && data);
  // Everything within one contiguous image stretch; code first.
  EXPECT_EQ(text->vaddr, kImageBase);
  EXPECT_LT(data->vaddr - text->vaddr, 64ULL << 20);
}

TEST(Layout, SectionsPageAlignedAndNonOverlapping) {
  for (LayoutKind layout : {LayoutKind::kVanilla, LayoutKind::kKrx}) {
    auto kernel = CompileKernel(MakeBaseSource(), {layout == LayoutKind::kKrx
                                    ? ProtectionConfig::Full(false, RaScheme::kDecoy, 3)
                                    : ProtectionConfig::Vanilla(), layout});
    ASSERT_TRUE(kernel.ok());
    const auto& sections = kernel->image->sections();
    for (size_t i = 0; i < sections.size(); ++i) {
      EXPECT_EQ(PageOffset(sections[i].vaddr), 0u) << sections[i].name;
      for (size_t j = i + 1; j < sections.size(); ++j) {
        uint64_t a0 = sections[i].vaddr, a1 = a0 + sections[i].mapped_size;
        uint64_t b0 = sections[j].vaddr, b1 = b0 + sections[j].mapped_size;
        EXPECT_TRUE(a1 <= b0 || b1 <= a0)
            << sections[i].name << " overlaps " << sections[j].name;
      }
    }
  }
}

TEST(Layout, CoarseSlideKeepsRegionInvariants) {
  ProtectionConfig config;
  config.coarse_kaslr = true;
  config.seed = 99;
  auto kernel = CompileKernel(MakeBaseSource(), {config, LayoutKind::kVanilla});
  ASSERT_TRUE(kernel.ok());
  const PlacedSection* text = kernel->image->FindSection(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_GT(text->vaddr, kImageBase);                 // actually slid
  EXPECT_EQ(PageOffset(text->vaddr), 0u);             // page aligned
  EXPECT_LT(text->vaddr, kImageBase + (64ULL << 20)); // bounded slide
}

TEST(Layout, GuardSectionIsUnwritableAndUnexecutable) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  const PlacedSection* guard = kernel->image->FindSection(".krx_phantom");
  ASSERT_NE(guard, nullptr);
  const Pte* pte = kernel->image->page_table().Lookup(guard->vaddr);
  ASSERT_NE(pte, nullptr);
  EXPECT_FALSE(pte->flags.writable);
  EXPECT_TRUE(pte->flags.nx);
  // Stray %rsp-relative reads that spill past _krx_edata land here and read
  // zeros instead of code.
  auto v = kernel->image->Peek64(guard->vaddr + 128);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0u);
}

}  // namespace
}  // namespace krx
