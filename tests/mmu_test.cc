// Page tables and MMU with x86 permission semantics — the premise of the
// paper: execute-only memory is not expressible (X implies R).
#include <gtest/gtest.h>

#include "src/mem/mmu.h"

namespace krx {
namespace {

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : phys_(1 << 20), mmu_(&phys_, &pt_) {}
  PhysMem phys_;
  PageTable pt_;
  Mmu mmu_;
};

TEST_F(MmuTest, UnmappedFaults) {
  auto r = mmu_.Read64(0x1000);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(mmu_.last_fault().kind, FaultKind::kNotPresent);
  EXPECT_EQ(mmu_.last_fault().vaddr, 0x1000u);
}

TEST_F(MmuTest, ReadWriteRoundTrip) {
  pt_.Map(0x5000, 2, PteFlags{true, true, true});
  ASSERT_TRUE(mmu_.Write64(0x5008, 0xDEADBEEF).ok());
  auto r = mmu_.Read64(0x5008);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0xDEADBEEFu);
}

TEST_F(MmuTest, WriteProtect) {
  pt_.Map(0x5000, 2, PteFlags{true, false, true});
  EXPECT_FALSE(mmu_.Write64(0x5000, 1).ok());
  EXPECT_EQ(mmu_.last_fault().kind, FaultKind::kWriteProtect);
  EXPECT_TRUE(mmu_.Read64(0x5000).ok());
}

TEST_F(MmuTest, NxBlocksFetchOnly) {
  pt_.Map(0x6000, 3, PteFlags{true, false, true});
  uint8_t buf[4];
  EXPECT_FALSE(mmu_.FetchCode(0x6000, buf, 4).ok());
  EXPECT_EQ(mmu_.last_fault().kind, FaultKind::kNxViolation);
  EXPECT_TRUE(mmu_.Read64(0x6000).ok());
}

TEST_F(MmuTest, ExecutableImpliesReadable) {
  // The x86 rule at the heart of the paper: a code page (executable, not
  // writable) is always *readable* — paging cannot express execute-only.
  pt_.Map(0x7000, 4, PteFlags{true, false, false});
  uint8_t buf[8];
  EXPECT_TRUE(mmu_.FetchCode(0x7000, buf, 8).ok());
  EXPECT_TRUE(mmu_.Read64(0x7000).ok());  // read succeeds despite being code
}

TEST_F(MmuTest, CrossPageAccess) {
  pt_.Map(0x8000, 5, PteFlags{true, true, true});
  pt_.Map(0x9000, 6, PteFlags{true, true, true});
  ASSERT_TRUE(mmu_.Write64(0x8FFC, 0x1122334455667788ULL).ok());
  auto r = mmu_.Read64(0x8FFC);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0x1122334455667788ULL);
  // Unmap the second page: the straddling access now faults.
  pt_.Unmap(0x9000);
  EXPECT_FALSE(mmu_.Read64(0x8FFC).ok());
}

TEST_F(MmuTest, FetchStopsAtUnmappedBoundary) {
  pt_.Map(0xA000, 7, PteFlags{true, false, false});
  phys_.Fill(7 << kPageShift, 0xAB, kPageSize);
  uint8_t buf[16];
  auto n = mmu_.FetchCode(0xAFF8, buf, 16);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 8u);  // partial fetch up to the page end
  EXPECT_EQ(buf[0], 0xAB);
}

TEST_F(MmuTest, AliasedMappingsShareFrame) {
  // Physmap-style synonym: two virtual pages, one frame.
  pt_.Map(0xB000, 8, PteFlags{true, false, false});   // "code" view
  pt_.Map(0xC000, 8, PteFlags{true, true, true});     // direct-map view
  ASSERT_TRUE(mmu_.Write64(0xC010, 0x42).ok());
  auto r = mmu_.Read64(0xB010);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0x42u);  // the alias reads the same bytes
}

TEST_F(MmuTest, MapRangeAndUnmapRange) {
  pt_.MapRange(0x10000, 10, 4, PteFlags{true, true, true});
  EXPECT_EQ(pt_.MappedPageCount(), 4u);
  EXPECT_TRUE(mmu_.Read64(0x12FF8).ok());
  pt_.UnmapRange(0x10000, 4);
  EXPECT_EQ(pt_.MappedPageCount(), 0u);
}

TEST_F(MmuTest, WxAudit) {
  pt_.Map(0xD000, 11, PteFlags{true, true, false});  // writable + executable!
  pt_.Map(0xE000, 12, PteFlags{true, true, true});
  auto violations = pt_.FindWxViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], 0xD000u);
}

TEST_F(MmuTest, TlbCountersSplitByAccessKind) {
  pt_.Map(0xF000, 13, PteFlags{true, true, false});
  uint8_t buf[1];
  (void)mmu_.Read64(0xF000);
  (void)mmu_.FetchCode(0xF000, buf, 1);
  EXPECT_EQ(mmu_.stats().dtlb_lookups, 1u);
  EXPECT_EQ(mmu_.stats().itlb_lookups, 1u);
}

TEST_F(MmuTest, SmepBlocksSupervisorFetchFromUserPage) {
  pt_.Map(0x4000, 14, PteFlags{true, true, false, /*user=*/true});
  uint8_t buf[4];
  // Without SMEP the (supervisor) fetch works — the ret2usr preconditions.
  EXPECT_TRUE(mmu_.FetchCode(0x4000, buf, 4).ok());
  mmu_.set_smep(true);
  EXPECT_FALSE(mmu_.FetchCode(0x4000, buf, 4).ok());
  EXPECT_EQ(mmu_.last_fault().kind, FaultKind::kSmepViolation);
  // Data reads are unaffected by SMEP.
  EXPECT_TRUE(mmu_.Read64(0x4000).ok());
}

TEST_F(MmuTest, SmapBlocksSupervisorDataAccessToUserPage) {
  pt_.Map(0x4000, 14, PteFlags{true, true, false, /*user=*/true});
  EXPECT_TRUE(mmu_.Read64(0x4000).ok());
  mmu_.set_smap(true);
  EXPECT_FALSE(mmu_.Read64(0x4000).ok());
  EXPECT_EQ(mmu_.last_fault().kind, FaultKind::kSmapViolation);
  EXPECT_FALSE(mmu_.Write64(0x4000, 1).ok());
  // Kernel pages stay accessible.
  pt_.Map(0x5000, 15, PteFlags{true, true, true, false});
  EXPECT_TRUE(mmu_.Read64(0x5000).ok());
}

TEST(PhysMem, FrameAllocatorExhausts) {
  PhysMem phys(4 * kPageSize);
  EXPECT_TRUE(phys.AllocFrames(4).ok());
  EXPECT_FALSE(phys.AllocFrames(1).ok());
}

}  // namespace
}  // namespace krx
