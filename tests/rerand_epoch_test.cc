// Live re-randomization: epochs on a running image must be invisible to the
// guest (bit-identical results), atomic (full rollback on any injected
// failure), and effective (a disclosed gadget address goes stale).
//
// The end-to-end test drives three consecutive epochs while two Cpus have
// in-flight work: Cpu A runs the cooperative scheduler (suspended worker
// tasks hold encrypted return addresses on their stacks across each epoch),
// and Cpu B hammers a generated kernel op from a second thread, entering
// and leaving the quiescence gate the whole time.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "src/attack/gadget_scanner.h"
#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/rerand/engine.h"
#include "src/supervise/clock.h"
#include "src/verify/verifier.h"
#include "src/workload/corpus.h"
#include "src/workload/ops.h"
#include "src/workload/sched.h"

namespace krx {
namespace {

constexpr uint64_t kDiversifySeed = 61;
constexpr uint64_t kFillSeed = 0xF111;
constexpr int kProbeRuns = 24;

struct Env {
  CompiledKernel kernel;
  std::unique_ptr<Cpu> cpu_a;
  std::unique_ptr<Cpu> cpu_b;
  uint64_t buf = 0;

  KernelImage& image() { return *kernel.image; }

  uint64_t Global(const char* name) {
    auto addr = kernel.image->symbols().AddressOf(name);
    KRX_CHECK(addr.ok());
    auto v = kernel.image->Peek64(*addr);
    KRX_CHECK(v.ok());
    return *v;
  }
};

// Scheduler + one generated LMBench-style op on the full kR^X column.
// Baseline and live environments must perform identical allocations in
// identical order (the image allocator is a bump allocator), so every Env
// is built by this one function.
Env MakeEnv() {
  KernelSource src = MakeBaseSource();
  AddSched(&src);
  OpProfile profile;
  profile.name = "probe";
  profile.coalescible_reads = 2;
  profile.chased_reads = 1;
  profile.writes = 1;
  profile.calls = 1;
  profile.leaf_depth = 2;
  EmitKernelOp(&src, profile);

  ProtectionConfig config = ProtectionConfig::Full(false, RaScheme::kEncrypt, kDiversifySeed);
  for (const std::string& name : SchedExemptFunctions()) {
    config.exempt_functions.insert(name);
  }
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  Env env{std::move(*kernel), nullptr, nullptr, 0};
  KRX_CHECK(SetUpTaskStacks(env.image()).ok());
  auto buf = SetUpOpBuffer(env.image(), kFillSeed);
  KRX_CHECK(buf.ok());
  env.buf = *buf;
  env.cpu_a = std::make_unique<Cpu>(env.kernel.image.get());
  env.cpu_b = std::make_unique<Cpu>(env.kernel.image.get());
  return env;
}

// The guest-visible trace of one scheduler session on Cpu A: spawn both
// workers, then drive the shared counter in four steps. `epoch` (when
// non-null) fires between the steps — with the workers suspended mid-call-
// chain, so their stacks carry live encrypted return addresses.
std::vector<uint64_t> RunSchedSession(Env& env, const std::function<void()>& epoch) {
  std::vector<uint64_t> trace;
  for (uint64_t slot : {uint64_t{0}, uint64_t{1}}) {
    RunResult r = env.cpu_a->CallFunction("sys_spawn", {slot});
    KRX_CHECK(r.reason == StopReason::kReturned);
    trace.push_back(r.rax);
  }
  for (uint64_t limit : {uint64_t{8}, uint64_t{16}, uint64_t{24}, uint64_t{64}}) {
    RunResult r = env.cpu_a->CallFunction("sched_run", {limit});
    KRX_CHECK(r.reason == StopReason::kReturned);
    trace.push_back(r.rax);
    if (epoch && limit != 64) epoch();
  }
  trace.push_back(env.Global("worker_a_runs"));
  trace.push_back(env.Global("worker_b_runs"));
  trace.push_back(env.Global("sched_counter"));
  return trace;
}

// One op run on Cpu B: refill the scratch buffer deterministically, then
// call the generated entry. `gate` (when non-null) covers the refill so it
// cannot race an epoch's verify pass; the call gates itself via the Cpu.
uint64_t RunProbe(Env& env, int i, QuiesceGate* gate) {
  {
    QuiesceRunScope scope(gate);
    KRX_CHECK(FillOpBuffer(env.image(), env.buf, kFillSeed + static_cast<uint64_t>(i)).ok());
  }
  RunResult r = env.cpu_b->CallFunction("sys_probe", {env.buf});
  KRX_CHECK(r.reason == StopReason::kReturned);
  return r.rax;
}

std::vector<uint8_t> ReadTextBytes(KernelImage& image) {
  const PlacedSection* text = image.FindSection(".text");
  KRX_CHECK(text != nullptr);
  std::vector<uint8_t> bytes(text->size);
  KRX_CHECK(image.PeekBytes(text->vaddr, bytes.data(), bytes.size()).ok());
  return bytes;
}

TEST(RerandEpoch, ThreeEpochsBitIdenticalAcrossTwoCpus) {
  // Baseline: the same guest work, never re-randomized.
  Env baseline = MakeEnv();
  std::vector<uint64_t> base_sched = RunSchedSession(baseline, nullptr);
  std::vector<uint64_t> base_probe;
  for (int i = 0; i < kProbeRuns; ++i) base_probe.push_back(RunProbe(baseline, i, nullptr));

  Env env = MakeEnv();
  RerandEngine engine(&env.kernel);
  engine.RegisterCpu(env.cpu_a.get());
  engine.RegisterCpu(env.cpu_b.get());
  engine.set_stack_range_provider(SchedLiveStackRanges);

  // "Disclose" a gadget before any epoch: scan the live text the way
  // JIT-ROP would and remember one gadget's address and bytes.
  std::vector<uint8_t> pre_text = ReadTextBytes(env.image());
  const uint64_t text_base = env.image().FindSection(".text")->vaddr;
  std::vector<Gadget> gadgets = GadgetScanner().Scan(pre_text.data(), pre_text.size(), text_base);
  ASSERT_FALSE(gadgets.empty());
  const Gadget* leaked = &gadgets[0];
  for (const Gadget& g : gadgets) {
    if (g.payload_len() >= 1) { leaked = &g; break; }
  }
  const uint64_t leak_off = leaked->address - text_base;
  const size_t leak_len = std::min<size_t>(16, pre_text.size() - leak_off);

  // Cpu B hammers the op from a second thread for the whole session.
  std::vector<uint64_t> live_probe(kProbeRuns);
  std::thread prober([&] {
    for (int i = 0; i < kProbeRuns; ++i) live_probe[static_cast<size_t>(i)] = RunProbe(env, i, &engine.gate());
  });

  std::vector<EpochReport> reports;
  std::vector<uint64_t> live_sched = RunSchedSession(env, [&] {
    auto r = engine.RunEpoch();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reports.push_back(*r);
  });
  prober.join();

  // Bit-identical guest results, on both Cpus.
  EXPECT_EQ(live_sched, base_sched);
  EXPECT_EQ(live_probe, base_probe);

  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(engine.epochs_completed(), 3u);
  EXPECT_EQ(engine.epoch_failures(), 0u);
  const size_t fn_count = engine.map().functions.size();
  for (const EpochReport& r : reports) {
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.functions_moved, fn_count * 9 / 10);
    EXPECT_EQ(r.keys_rotated, engine.map().xkey_slots.size());
    EXPECT_GT(r.keys_rotated, 0u);
  }
  // The second and third epochs ran with suspended workers, whose stacks
  // hold encrypted in-flight return addresses that had to be re-keyed.
  EXPECT_GT(reports[1].stack_words_rewritten, 0u);
  EXPECT_GT(reports[2].stack_words_rewritten, 0u);

  // The disclosed gadget address is stale: the bytes there are no longer
  // the leaked sequence.
  std::vector<uint8_t> post_text = ReadTextBytes(env.image());
  ASSERT_EQ(post_text.size(), pre_text.size());
  EXPECT_NE(std::vector<uint8_t>(post_text.begin() + static_cast<long>(leak_off),
                                 post_text.begin() + static_cast<long>(leak_off + leak_len)),
            std::vector<uint8_t>(pre_text.begin() + static_cast<long>(leak_off),
                                 pre_text.begin() + static_cast<long>(leak_off + leak_len)));

  // The post-epoch image re-proves the whole protection contract.
  VerifyReport report = VerifyImage(env.image(), VerifyOptions::ForConfig(env.kernel.config));
  EXPECT_TRUE(report.ok()) << report.Summary(8);
}

TEST(RerandEpoch, KeysOnlyRotationMidCallChain) {
  Env baseline = MakeEnv();
  std::vector<uint64_t> base_sched = RunSchedSession(baseline, nullptr);

  Env env = MakeEnv();
  RerandOptions options;
  options.permute = false;  // rotate xkeys, leave the layout alone
  RerandEngine engine(&env.kernel, options);
  engine.RegisterCpu(env.cpu_a.get());
  engine.set_stack_range_provider(SchedLiveStackRanges);

  const RerandMap& map = engine.map();
  ASSERT_FALSE(map.xkey_slots.empty());

  std::vector<uint64_t> fn_addrs, old_keys;
  for (const RerandFunction& fn : map.functions) {
    fn_addrs.push_back(env.image().symbols().at(fn.symbol).address);
  }
  for (const RerandXkeySlot& slot : map.xkey_slots) {
    old_keys.push_back(*env.image().Peek64(slot.vaddr));
  }

  // Fire the epoch while both workers are suspended mid-call-chain.
  std::vector<uint64_t> live_sched = RunSchedSession(env, [&] {
    auto r = engine.RunEpoch();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->functions_moved, 0u);
    EXPECT_GT(r->stack_words_rewritten, 0u);
  });
  EXPECT_EQ(live_sched, base_sched);

  for (size_t i = 0; i < map.functions.size(); ++i) {
    EXPECT_EQ(env.image().symbols().at(map.functions[i].symbol).address, fn_addrs[i]);
  }
  for (size_t i = 0; i < map.xkey_slots.size(); ++i) {
    uint64_t now = *env.image().Peek64(map.xkey_slots[i].vaddr);
    EXPECT_NE(now, old_keys[i]) << map.xkey_slots[i].fn_name;
    EXPECT_NE(now, 0u);
  }
}

TEST(RerandEpoch, ModuleCallSitesRepatchedAcrossEpoch) {
  Env env = MakeEnv();
  ModuleLoader loader(env.kernel.image.get());
  RerandEngine engine(&env.kernel);
  engine.RegisterCpu(env.cpu_a.get());
  engine.set_module_loader(&loader);

  // A module whose text calls into kernel text: the call's rel32 must be
  // re-resolved every epoch (the module does not move, commit_creds does).
  SymbolTable& symbols = env.image().symbols();
  FunctionBuilder b("mod_probe");
  b.Emit(Instruction::CallSym(symbols.Intern("commit_creds")));
  b.Emit(Instruction::MovRI(Reg::kRax, 7));
  b.Emit(Instruction::Ret());
  std::vector<Function> fns;
  fns.push_back(b.Build());
  symbols.Intern("mod_probe");
  auto mod = CompileModule("rr", std::move(fns), {}, symbols, env.kernel.config);
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  ASSERT_TRUE(loader.Load(*mod).ok());

  ASSERT_EQ(env.cpu_a->CallFunction("mod_probe", {0x111}).rax, 7u);
  EXPECT_EQ(env.Global("current_cred"), 0x111u);

  auto r = engine.RunEpoch();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->module_sites_patched, 1u);

  RunResult after = env.cpu_a->CallFunction("mod_probe", {0x222});
  ASSERT_EQ(after.reason, StopReason::kReturned)
      << ExceptionKindName(after.exception) << (after.krx_violation ? " krx" : "");
  EXPECT_EQ(after.rax, 7u);
  EXPECT_EQ(env.Global("current_cred"), 0x222u);
}

TEST(RerandEpoch, TriggerAdaptersAndTimer) {
  Env env = MakeEnv();
  RerandEngine engine(&env.kernel);
  engine.RegisterCpu(env.cpu_a.get());
  engine.set_stack_range_provider(SchedLiveStackRanges);

  auto oops = engine.NotifyOops();
  ASSERT_TRUE(oops.ok());
  EXPECT_EQ(oops->trigger, RerandTrigger::kOops);
  auto leak = engine.NotifyDisclosure();
  ASSERT_TRUE(leak.ok());
  EXPECT_EQ(leak->trigger, RerandTrigger::kDisclosure);

  // Periodic epochs keep firing while the guest keeps running. The timer
  // thread waits on an injected FakeClock, so the test drives its schedule
  // deterministically instead of sleeping real wall-clock periods; the
  // real-time deadline is only a liveness bound on the whole loop.
  const uint64_t before = engine.epochs_completed();
  FakeClock clock;
  engine.StartTimer(std::chrono::milliseconds(5), &clock);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.epochs_completed() < before + 2 &&
         std::chrono::steady_clock::now() < deadline) {
    clock.Advance(std::chrono::milliseconds(6));
    RunResult r = env.cpu_a->CallFunction("sys_probe", {env.buf});
    ASSERT_EQ(r.reason, StopReason::kReturned);
  }
  engine.StopTimer();
  EXPECT_GE(engine.epochs_completed(), before + 2);
  EXPECT_EQ(engine.epoch_failures(), 0u);

  VerifyReport report = VerifyImage(env.image(), VerifyOptions::ForConfig(env.kernel.config));
  EXPECT_TRUE(report.ok()) << report.Summary(8);
}

class RerandFailpointSweep : public ::testing::TestWithParam<int> {};

TEST_P(RerandFailpointSweep, EpochRollsBackCompletely) {
  const RerandStep step = static_cast<RerandStep>(GetParam());
  Env env = MakeEnv();
  RerandEngine engine(&env.kernel);
  engine.RegisterCpu(env.cpu_a.get());
  engine.set_stack_range_provider(SchedLiveStackRanges);

  // Suspend the workers mid-call-chain so the rollback has to restore a
  // state with live in-flight return addresses.
  ASSERT_EQ(env.cpu_a->CallFunction("sys_spawn", {0}).rax, 1u);
  ASSERT_EQ(env.cpu_a->CallFunction("sys_spawn", {1}).rax, 2u);
  ASSERT_EQ(env.cpu_a->CallFunction("sched_run", {16}).reason, StopReason::kReturned);

  KernelImage& image = env.image();
  const SymbolTable& syms = image.symbols();
  std::vector<uint8_t> text_before = ReadTextBytes(image);
  std::vector<uint8_t> keys_before;
  const PlacedSection* xkeys = image.FindSection(".krx_xkeys");
  if (xkeys != nullptr) {
    keys_before.resize(xkeys->size);
    ASSERT_TRUE(image.PeekBytes(xkeys->vaddr, keys_before.data(), keys_before.size()).ok());
  }
  std::vector<uint64_t> addrs_before;
  for (size_t i = 0; i < syms.size(); ++i) {
    addrs_before.push_back(syms.at(static_cast<int32_t>(i)).address);
  }
  std::vector<uint64_t> offsets_before;
  for (const RerandFunction& fn : engine.map().functions) {
    offsets_before.push_back(fn.current_offset);
  }

  engine.set_failpoint(step);
  auto failed = engine.RunEpoch();
  ASSERT_FALSE(failed.ok()) << "failpoint before " << RerandStepName(step)
                            << " did not fail the epoch";
  EXPECT_NE(failed.status().message().find(RerandStepName(step)), std::string::npos);
  EXPECT_EQ(engine.epochs_completed(), 0u);
  EXPECT_EQ(engine.epoch_failures(), 1u);

  // Byte-identical state: text, key material, symbols, layout bookkeeping.
  EXPECT_EQ(ReadTextBytes(image), text_before);
  if (xkeys != nullptr) {
    std::vector<uint8_t> keys_now(xkeys->size);
    ASSERT_TRUE(image.PeekBytes(xkeys->vaddr, keys_now.data(), keys_now.size()).ok());
    EXPECT_EQ(keys_now, keys_before);
  }
  for (size_t i = 0; i < addrs_before.size(); ++i) {
    EXPECT_EQ(syms.at(static_cast<int32_t>(i)).address, addrs_before[i]);
  }
  for (size_t i = 0; i < offsets_before.size(); ++i) {
    EXPECT_EQ(engine.map().functions[i].current_offset, offsets_before[i]);
  }

  // Clearing the failpoint makes the next epoch succeed, and the guest
  // finishes its session on the post-epoch image.
  engine.clear_failpoint();
  auto ok = engine.RunEpoch();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  RunResult r = env.cpu_a->CallFunction("sched_run", {64});
  ASSERT_EQ(r.reason, StopReason::kReturned)
      << ExceptionKindName(r.exception) << (r.krx_violation ? " krx" : "");
  EXPECT_GE(r.rax, 64u);
}

INSTANTIATE_TEST_SUITE_P(Steps, RerandFailpointSweep,
                         ::testing::Range(0, static_cast<int>(RerandStep::kNumSteps)));

// The gate itself: a writer gets priority over a steady stream of readers
// and observes zero active runs while exclusive.
TEST(QuiesceGateTest, WriterExcludesAndPreempts) {
  QuiesceGate gate;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> runs{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        QuiesceRunScope scope(&gate);
        runs.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    gate.BeginExclusive();
    EXPECT_EQ(gate.active_runs(), 0u);
    gate.EndExclusive();
    // On a single core the writer can win every reacquisition; make sure
    // readers actually get through the gate between exclusive sections.
    while (runs.load() < static_cast<uint64_t>(i + 1)) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GE(runs.load(), 50u);
}

}  // namespace
}  // namespace krx
