// Appendix A: the two Linux kernel bugs discovered while developing
// kR^X-KAS, reproduced as executable models.
#include <gtest/gtest.h>

#include "src/kernel/appendix_bugs.h"

namespace krx {
namespace {

constexpr uint64_t kKernelDataLarge =
    kPteFlagPresent | kPteFlagWritable | kPteFlagAccessed | kPteFlagDirty | kPteFlagPse |
    kPteFlagGlobal | kPteFlagXd;

TEST(PgprotBug, SixtyFourBitKeepsXd) {
  uint64_t flags = PgprotLarge2_4k(kKernelDataLarge, WordSize::k64);
  EXPECT_TRUE(flags & kPteFlagXd);
  EXPECT_FALSE(flags & kPteFlagPse);
  EXPECT_FALSE(IsWxViolation(flags));
}

TEST(PgprotBug, ThirtyTwoBitDropsXd) {
  // The security-critical bug: `unsigned long val` is 32 bits wide on x86,
  // so the XD bit (bit 63) is cleared and the resulting 4KB pages are
  // silently executable.
  uint64_t flags = PgprotLarge2_4k(kKernelDataLarge, WordSize::k32);
  EXPECT_FALSE(flags & kPteFlagXd);
  EXPECT_TRUE(IsWxViolation(flags));  // writable + executable
}

TEST(PgprotBug, RoundTrip4kToLarge) {
  uint64_t small = kPteFlagPresent | kPteFlagWritable | kPteFlagXd;
  uint64_t large64 = Pgprot4k_2Large(small, WordSize::k64);
  EXPECT_TRUE(large64 & kPteFlagPse);
  EXPECT_TRUE(large64 & kPteFlagXd);
  uint64_t large32 = Pgprot4k_2Large(small, WordSize::k32);
  EXPECT_TRUE(large32 & kPteFlagPse);
  EXPECT_FALSE(large32 & kPteFlagXd);  // lost again
}

TEST(PgprotBug, SplitOnlyViolatesWxWhenWritable) {
  uint64_t ro_large = kPteFlagPresent | kPteFlagPse | kPteFlagXd;  // read-only data
  EXPECT_FALSE(IsWxViolation(SplitLargePageFlags(ro_large, WordSize::k32)));
  uint64_t rw_large = ro_large | kPteFlagWritable;
  EXPECT_TRUE(IsWxViolation(SplitLargePageFlags(rw_large, WordSize::k32)));
  EXPECT_FALSE(IsWxViolation(SplitLargePageFlags(rw_large, WordSize::k64)));
}

TEST(ModuleAllocBug, CorrectCheckRejectsOversize) {
  const uint64_t modules_len = 512ULL << 20;
  EXPECT_TRUE(ModuleAllocSizeCheckPasses(4096, modules_len, /*buggy=*/false));
  EXPECT_TRUE(ModuleAllocSizeCheckPasses(modules_len, modules_len, false));
  EXPECT_FALSE(ModuleAllocSizeCheckPasses(modules_len + 1, modules_len, false));
}

TEST(ModuleAllocBug, BuggyCheckNeverFails) {
  // On 32-bit x86 MODULES_LEN was assigned its complementary value, so the
  // sanity check can never reject — only the later vmalloc failure saves
  // the day (a benign bug, per the paper).
  const uint64_t modules_len = 512ULL << 20;
  for (uint64_t size : std::initializer_list<uint64_t>{1, modules_len, modules_len * 16, ~0ULL >> 1}) {
    EXPECT_TRUE(ModuleAllocSizeCheckPasses(size, modules_len, /*buggy=*/true)) << size;
  }
}

}  // namespace
}  // namespace krx
