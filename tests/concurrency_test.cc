// Concurrency contracts the telemetry work leans on (DESIGN.md §10/§11):
// the QuiesceGate must give an epoch writer priority over a steady stream
// of reader runs without ever letting it observe an in-flight run, and the
// ThreadPool destructor must drain queued tasks exactly once, in FIFO
// order, before joining. Run these under the ASan preset too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/bench_runner/thread_pool.h"
#include "src/rerand/quiesce.h"

namespace krx {
namespace {

// Eight readers loop run scopes as fast as they can; a writer repeatedly
// takes the gate exclusively. Writer priority means the writer gets in
// despite the churn (a fair-readers lock would starve it), and exclusivity
// means it never coexists with an active run.
TEST(QuiesceGate, WriterPriorityUnderReaderChurn) {
  QuiesceGate gate;
  constexpr int kReaders = 8;
  constexpr int kEpochs = 50;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> runs{0};
  std::atomic<int> violations{0};
  std::atomic<int> in_run{0};  // readers inside their critical section
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        QuiesceRunScope scope(&gate);
        in_run.fetch_add(1, std::memory_order_relaxed);
        runs.fetch_add(1, std::memory_order_relaxed);
        in_run.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int epochs_done = 0;
  for (; epochs_done < kEpochs && std::chrono::steady_clock::now() < deadline; ++epochs_done) {
    gate.BeginExclusive();
    // Exclusivity: no run may be active (or start) while we hold the gate.
    if (gate.active_runs() != 0 || in_run.load(std::memory_order_relaxed) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t before = runs.load(std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (runs.load(std::memory_order_relaxed) != before ||
        in_run.load(std::memory_order_relaxed) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    gate.EndExclusive();
  }
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(violations.load(), 0);
  // Writer priority: all epochs completed well inside the deadline even
  // though readers never paused.
  EXPECT_EQ(epochs_done, kEpochs) << "writer starved by reader churn";
  EXPECT_GT(runs.load(), 0u) << "readers never ran; the test proved nothing";
}

// A second writer must also drain cleanly while readers churn (two epoch
// sources — e.g. timer + disclosure trigger — must not deadlock).
TEST(QuiesceGate, TwoWritersInterleaveWithReaders) {
  QuiesceGate gate;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        QuiesceRunScope scope(&gate);
      }
    });
  }
  std::atomic<int> epochs{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        gate.BeginExclusive();
        EXPECT_EQ(gate.active_runs(), 0u);
        epochs.fetch_add(1, std::memory_order_relaxed);
        gate.EndExclusive();
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(epochs.load(), 40);
}

// Destroying the pool with work still queued must run every task exactly
// once before the workers join — shutdown drains, it does not discard.
TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  for (auto& r : ran) {
    r.store(0);
  }
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&ran, i] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): the destructor itself is on the hook for the backlog.
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

// With one worker the queue is strictly FIFO, and that order must survive
// a shutdown-while-queued drain.
TEST(ThreadPool, SingleWorkerDrainsInFifoOrder) {
  std::vector<int> order;
  std::mutex mu;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&order, &mu, i] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      });
    }
  }
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

// Wait() returns only after in-flight tasks finish, and the pool remains
// usable for another batch afterwards.
TEST(ThreadPool, WaitBlocksUntilIdleAndPoolIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), 16 * (batch + 1));
  }
}

}  // namespace
}  // namespace krx
