// Build-pipeline unit tests: config presets, error paths, edata computation,
// determinism, and the alternate write-what-where exploitation path.
#include <gtest/gtest.h>

#include "src/attack/experiments.h"
#include "src/attack/gadget_scanner.h"
#include "src/ir/builder.h"
#include "src/kernel/layout.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

TEST(Config, Presets) {
  EXPECT_FALSE(ProtectionConfig::Vanilla().HasRangeChecks());
  EXPECT_TRUE(ProtectionConfig::SfiOnly(SfiLevel::kO0).HasRangeChecks());
  EXPECT_TRUE(ProtectionConfig::MpxOnly().mpx);
  ProtectionConfig d = ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, 7);
  EXPECT_TRUE(d.diversify);
  EXPECT_EQ(d.ra, RaScheme::kDecoy);
  EXPECT_FALSE(d.HasRangeChecks());
  ProtectionConfig full = ProtectionConfig::Full(true, RaScheme::kEncrypt, 9);
  EXPECT_TRUE(full.mpx && full.diversify);
  EXPECT_EQ(full.sfi, SfiLevel::kO3);
}

TEST(Pipeline, EdataSitsBelowCodeBase) {
  EXPECT_EQ(static_cast<uint64_t>(ComputeEdata(4096)), kKrxCodeBase - 4096);
  EXPECT_LT(static_cast<uint64_t>(ComputeEdata(8192)),
            static_cast<uint64_t>(ComputeEdata(4096)));
  // Sign-extended imm32 must reach the value (-mcmodel=kernel).
  int64_t edata = ComputeEdata(4096);
  EXPECT_GE(edata, INT32_MIN);  // fits the check immediate after sign extension
}

TEST(Pipeline, RangeChecksRequireKrxLayout) {
  KernelSource src = MakeBaseSource();
  auto bad = CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kVanilla});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Pipeline, DefaultHandlerInjectedWhenMissing) {
  KernelSource src = MakeBaseSource();  // corpus has no krx_handler of its own
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  EXPECT_TRUE(kernel->image->symbols().AddressOf(kKrxHandlerName).ok());
  EXPECT_TRUE(kernel->image->symbols().AddressOf("krx_violation_count").ok());
  // The handler lives in the execute-only region like all code.
  auto handler = kernel->image->symbols().AddressOf(kKrxHandlerName);
  EXPECT_GE(*handler, kernel->image->krx_edata());
}

TEST(Pipeline, SameSeedBitIdenticalText) {
  KernelSource src = MakeBaseSource();
  auto a = CompileKernel(src, {ProtectionConfig::Full(false, RaScheme::kDecoy, 123), LayoutKind::kKrx});
  auto b = CompileKernel(src, {ProtectionConfig::Full(false, RaScheme::kDecoy, 123), LayoutKind::kKrx});
  ASSERT_TRUE(a.ok() && b.ok());
  const PlacedSection* ta = (*a).image->FindSection(".text");
  const PlacedSection* tb = (*b).image->FindSection(".text");
  ASSERT_EQ(ta->size, tb->size);
  std::vector<uint8_t> ba(ta->size), bb(tb->size);
  ASSERT_TRUE((*a).image->PeekBytes(ta->vaddr, ba.data(), ba.size()).ok());
  ASSERT_TRUE((*b).image->PeekBytes(tb->vaddr, bb.data(), bb.size()).ok());
  EXPECT_EQ(ba, bb);
}

TEST(Pipeline, StatsArePopulated) {
  KernelSource src = MakeBenchSource(3);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Full(false, RaScheme::kDecoy, 3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  const PipelineStats& st = kernel->stats;
  EXPECT_GT(st.functions, 100u);
  EXPECT_GT(st.instrumented_functions, 100u);
  EXPECT_GT(st.sfi.checks_emitted, 100u);
  EXPECT_GT(st.kaslr.total_chunks, 500u);
  EXPECT_GT(st.decoy.call_sites, 50u);
  EXPECT_GE(st.kaslr.min_entropy_bits, 30.0);
  EXPECT_GE(st.phantom_guard_size, kPageSize);
}

TEST(Pipeline, GuardGrowsWithRspDisplacement) {
  KernelSource src = MakeBaseSource();
  {
    FunctionBuilder b("big_frame_reader");
    b.Emit(Instruction::SubRI(Reg::kRsp, 8192));
    b.Emit(Instruction::MovRI(Reg::kRcx, 1));
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 6000), Reg::kRcx));
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRsp, 6000)));
    b.Emit(Instruction::AddRI(Reg::kRsp, 8192));
    b.Emit(Instruction::Ret());
    src.functions.push_back(b.Build());
    src.symbols.Intern("big_frame_reader");
  }
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  // The guard must exceed the 6000-byte stack-read displacement.
  EXPECT_GE(kernel->stats.phantom_guard_size, 6000u);
  const PlacedSection* guard = kernel->image->FindSection(".krx_phantom");
  ASSERT_NE(guard, nullptr);
  EXPECT_GE(guard->mapped_size, 8192u);  // two pages
  // And the function runs cleanly under enforcement.
  Cpu cpu(kernel->image.get());
  RunResult r = cpu.CallFunction("big_frame_reader", {});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 1u);
}

TEST(Pipeline, WriteWhatWhereChainOnVanilla) {
  // The alternate escalation path: instead of calling commit_creds, reuse
  // [pop rdi; ret] + [pop rsi; ret] + [mov %rsi,(%rdi); ret] to write the
  // root credential directly — and verify diversification breaks it too.
  KernelSource src = MakeBenchSource(17);
  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(vanilla.ok());
  ExploitLab lab(&*vanilla);

  std::vector<uint8_t> text = lab.DumpText();
  GadgetScanner scanner;
  auto gadgets = scanner.Scan(text.data(), text.size(), lab.TextBase());
  auto pop_rdi = GadgetScanner::FindPopReg(gadgets, Reg::kRdi);
  auto pop_rsi = GadgetScanner::FindPopReg(gadgets, Reg::kRsi);
  auto store = GadgetScanner::FindStore(gadgets, Reg::kRdi, Reg::kRsi);
  ASSERT_TRUE(pop_rdi && pop_rsi && store);
  auto cred = vanilla->image->symbols().AddressOf(kCurrentCredName);
  ASSERT_TRUE(cred.ok());

  lab.ResetCreds();
  std::vector<uint64_t> chain = {pop_rdi->address, *cred,        pop_rsi->address,
                                 kRootCred,        store->address, Cpu::kReturnSentinel};
  lab.RunRopChain(chain);
  EXPECT_TRUE(lab.IsRoot());

  // The same chain against a diversified build fails.
  auto hardened = CompileKernel(src, {ProtectionConfig::Full(false, RaScheme::kEncrypt, 17), LayoutKind::kKrx});
  ASSERT_TRUE(hardened.ok());
  ExploitLab target(&*hardened);
  target.ResetCreds();
  target.RunRopChain(chain);
  EXPECT_FALSE(target.IsRoot());
}

TEST(Pipeline, ModuleCompilationSharesHandler) {
  KernelSource src = MakeBaseSource();
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  // Module instrumentation binds its violation branch to the *kernel's*
  // krx_handler symbol (eager binding at load).
  std::vector<Function> fns;
  FunctionBuilder b("m_read");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
  b.Emit(Instruction::Ret());
  fns.push_back(b.Build());
  kernel->image->symbols().Intern("m_read");
  auto mod = CompileModule("m", std::move(fns), {}, kernel->image->symbols(),
                           ProtectionConfig::SfiOnly(SfiLevel::kO3));
  ASSERT_TRUE(mod.ok());
  bool references_handler = false;
  int32_t handler = kernel->image->symbols().Find(kKrxHandlerName);
  for (const Reloc& r : mod->text.relocs) {
    if (r.symbol == handler) {
      references_handler = true;
    }
  }
  EXPECT_TRUE(references_handler);
}

}  // namespace
}  // namespace krx
