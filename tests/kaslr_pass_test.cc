// Fine-grained KASLR pass: slicing, phantom blocks, entropy, permutation,
// and semantic preservation under diversification.
#include <gtest/gtest.h>

#include "src/base/math_util.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"
#include "src/workload/fig2.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

Function Diversified(Function fn, uint64_t seed, int k = 30, KaslrStats* stats = nullptr) {
  Rng rng(seed);
  KaslrStats local;
  KRX_CHECK_OK(ApplyKaslrPass(fn, k, rng, &local));
  if (stats != nullptr) {
    *stats = local;
  }
  return fn;
}

TEST(KaslrPass, EntryBlockIsTrampoline) {
  Function fn = Diversified(MakeFig2Function(), 1);
  const BasicBlock& entry = fn.blocks().front();
  ASSERT_FALSE(entry.insts.empty());
  EXPECT_EQ(entry.insts[0].op, Opcode::kJmpRel);
  EXPECT_GE(entry.insts[0].target_block, 0);
  EXPECT_EQ(entry.insts[0].origin, InstOrigin::kDiversifier);
}

TEST(KaslrPass, ReachesRequestedEntropy) {
  for (int k : {10, 30, 45}) {
    KaslrStats stats;
    Diversified(MakeFig2Function(), 3, k, &stats);
    EXPECT_GE(stats.min_entropy_bits, static_cast<double>(k)) << "k=" << k;
  }
}

TEST(KaslrPass, PhantomBlocksNeverTargeted) {
  Function fn = Diversified(MakeFig2Function(), 7);
  // Validate() enforces this invariant; double-check directly.
  for (const BasicBlock& b : fn.blocks()) {
    if (!b.phantom) {
      continue;
    }
    for (const BasicBlock& other : fn.blocks()) {
      for (const Instruction& inst : other.insts) {
        EXPECT_NE(inst.target_block, b.id);
      }
    }
    // int3 padding closed by the ud2 byte-level phantom-block marker.
    ASSERT_FALSE(b.insts.empty());
    EXPECT_EQ(b.insts.back().op, Opcode::kUd2);
    for (size_t i = 0; i + 1 < b.insts.size(); ++i) {
      EXPECT_EQ(b.insts[i].op, Opcode::kInt3);
    }
  }
  EXPECT_TRUE(fn.Validate().ok());
}

TEST(KaslrPass, DifferentSeedsDifferentLayouts) {
  Function a = Diversified(MakeFig2Function(), 1);
  Function b = Diversified(MakeFig2Function(), 2);
  std::vector<int32_t> order_a, order_b;
  for (const BasicBlock& blk : a.blocks()) {
    order_a.push_back(blk.id);
  }
  for (const BasicBlock& blk : b.blocks()) {
    order_b.push_back(blk.id);
  }
  EXPECT_NE(order_a, order_b);
}

TEST(KaslrPass, SameSeedSameLayout) {
  Function a = Diversified(MakeFig2Function(), 9);
  Function b = Diversified(MakeFig2Function(), 9);
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(KaslrPass, SlicesAtCallSites) {
  // A block with a call in the middle is cut after the callq.
  FunctionBuilder b("f");
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Emit(Instruction::CallSym(0));
  b.Emit(Instruction::AddRI(Reg::kRsp, 8));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  ASSERT_EQ(fn.blocks().size(), 1u);
  KaslrStats stats;
  Function diversified = Diversified(std::move(fn), 4, 0, &stats);
  // After slicing, some block must end with the callq — possibly followed
  // by the connector jmp the diversifier adds at the chunk boundary.
  bool call_ends_block = false;
  for (const BasicBlock& blk : diversified.blocks()) {
    if (blk.insts.empty()) {
      continue;
    }
    const auto& insts = blk.insts;
    if (insts.back().IsCall() ||
        (insts.size() >= 2 && insts.back().origin == InstOrigin::kDiversifier &&
         insts[insts.size() - 2].IsCall())) {
      call_ends_block = true;
    }
  }
  EXPECT_TRUE(call_ends_block);
}

TEST(KaslrPass, SingleBlockFunctionCounted) {
  FunctionBuilder b("tiny");
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  KaslrStats stats;
  Diversified(b.Build(), 5, 30, &stats);
  EXPECT_EQ(stats.single_block_functions, 1u);
  EXPECT_GT(stats.phantom_blocks, 0u);  // zero-entropy routines get padding
}

// Semantic preservation: the diversified bench kernels must compute exactly
// what the vanilla kernel computes, for several seeds.
class KaslrSemantics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KaslrSemantics, DiversifiedKernelMatchesVanilla) {
  KernelSource src = MakeBenchSource(0xFEED);
  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(vanilla.ok());
  auto base = MeasureAllRows(*vanilla);
  ASSERT_TRUE(base.ok());

  auto diversified = CompileKernel(
      src, {ProtectionConfig::DiversifyOnly(RaScheme::kNone, GetParam()), LayoutKind::kKrx});
  ASSERT_TRUE(diversified.ok());
  auto rows = MeasureAllRows(*diversified);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i].rax, (*base)[i].rax) << (*rows)[i].row;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KaslrSemantics, ::testing::Values(11, 22, 33, 44));

TEST(FunctionPermutation, NoFunctionKeepsItsOffset) {
  KernelSource src = MakeBaseSource();
  auto a = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  auto b = CompileKernel(src, {ProtectionConfig::DiversifyOnly(RaScheme::kNone, 77), LayoutKind::kKrx});
  ASSERT_TRUE(a.ok() && b.ok());
  const PlacedSection* ta = (*a).image->FindSection(".text");
  const PlacedSection* tb = (*b).image->FindSection(".text");
  size_t same = 0, total = 0;
  const SymbolTable& sa = (*a).image->symbols();
  const SymbolTable& sb = (*b).image->symbols();
  for (size_t i = 0; i < sa.size(); ++i) {
    const Symbol& s = sa.at(static_cast<int32_t>(i));
    if (!s.defined || s.kind != SymbolKind::kFunction) {
      continue;
    }
    int32_t j = sb.Find(s.name);
    if (j < 0 || !sb.at(j).defined) {
      continue;
    }
    ++total;
    if (s.address - ta->vaddr == sb.at(j).address - tb->vaddr) {
      ++same;
    }
  }
  EXPECT_GT(total, 50u);
  EXPECT_EQ(same, 0u);
}

}  // namespace
}  // namespace krx
