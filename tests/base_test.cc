#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/base/math_util.h"
#include "src/base/rng.h"
#include "src/base/status.h"

namespace krx {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad register");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad register");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kPermissionDenied); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // overwhelmingly likely for a 10-element shuffle
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, BoolProbabilityExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, ForkIndependence) {
  Rng a(17);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

// LockedRng: concurrent draws are each an atomic consumption of one value
// from the underlying stream — the multiset of results across threads is
// exactly the first N outputs of a plain Rng with the same seed, no value
// lost, duplicated, or torn. Run under TSan (sanitize label) this is also
// the data-race check for the engine's shared-generator pattern.
TEST(LockedRng, ConcurrentDrawsConsumeTheSequenceExactly) {
  constexpr int kThreads = 4;
  constexpr int kDrawsPerThread = 2000;
  LockedRng locked(99);
  std::vector<std::vector<uint64_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[static_cast<size_t>(t)].reserve(kDrawsPerThread);
      for (int i = 0; i < kDrawsPerThread; ++i) {
        per_thread[static_cast<size_t>(t)].push_back(locked.Next());
      }
    });
  }
  for (auto& t : threads) t.join();

  std::multiset<uint64_t> drawn;
  for (const auto& v : per_thread) drawn.insert(v.begin(), v.end());
  Rng reference(99);
  std::multiset<uint64_t> expected;
  for (int i = 0; i < kThreads * kDrawsPerThread; ++i) expected.insert(reference.Next());
  EXPECT_EQ(drawn, expected);
}

TEST(LockedRng, ForkedStreamsAreIndependent) {
  LockedRng locked(21);
  Rng forked = locked.Fork();
  EXPECT_NE(locked.Next(), forked.Next());
  EXPECT_LT(locked.NextBelow(10), 10u);
  EXPECT_FALSE(locked.NextBool(0.0));
}

TEST(MathUtil, PermutationEntropy) {
  EXPECT_DOUBLE_EQ(PermutationEntropyBits(0), 0.0);
  EXPECT_DOUBLE_EQ(PermutationEntropyBits(1), 0.0);
  EXPECT_NEAR(PermutationEntropyBits(2), 1.0, 1e-9);              // lg(2!)
  EXPECT_NEAR(PermutationEntropyBits(4), std::log2(24.0), 1e-9);  // lg(4!)
}

TEST(MathUtil, BlocksForEntropy) {
  // The paper's default k = 30 needs 13 permutable blocks (lg(13!) ~ 32.5).
  EXPECT_EQ(BlocksForEntropyBits(30), 13u);
  EXPECT_EQ(BlocksForEntropyBits(0), 1u);
  for (double bits : {1.0, 8.0, 16.0, 40.0}) {
    uint64_t b = BlocksForEntropyBits(bits);
    EXPECT_GE(PermutationEntropyBits(b), bits);
    EXPECT_LT(PermutationEntropyBits(b - 1), bits);
  }
}

TEST(MathUtil, AlignUp) {
  EXPECT_EQ(AlignUp(0, 16), 0u);
  EXPECT_EQ(AlignUp(1, 16), 16u);
  EXPECT_EQ(AlignUp(16, 16), 16u);
  EXPECT_EQ(AlignUp(4097, 4096), 8192u);
  EXPECT_TRUE(IsAligned(8192, 4096));
  EXPECT_FALSE(IsAligned(8193, 4096));
}

TEST(MathUtil, OverheadPercent) {
  EXPECT_DOUBLE_EQ(OverheadPercent(100, 150), 50.0);
  EXPECT_DOUBLE_EQ(OverheadPercent(0, 10), 0.0);
}

}  // namespace
}  // namespace krx
