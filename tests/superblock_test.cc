// Superblock translate-and-chain engine: equivalence, invalidation, and the
// inline MMU translation cache.
//
// The contract under test (DESIGN.md §16): superblocked execution is an
// *optimization only* — every guest-visible field of a RunResult must be
// bit-identical to both the single-step interpreter and the predecoded
// block cache, across protection columns, step-limit boundaries, every
// text-mutation event (host pokes, module load/unload, guest SMC through
// physmap synonyms) and every page-table mutation (the inline TLB
// revalidates against the PageTable's page-generation counter).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/kernel/baseline_defenses.h"
#include "src/plugin/pipeline.h"
#include "src/rerand/quiesce.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

RunOptions Superblocked(uint64_t max_steps = kDefaultMaxSteps) {
  return RunOptions{.max_steps = max_steps, .engine = ExecEngine::kSuperblock};
}

RunOptions Cached(uint64_t max_steps = kDefaultMaxSteps) {
  return RunOptions{.max_steps = max_steps, .engine = ExecEngine::kBlockCache};
}

RunOptions SingleStep(uint64_t max_steps = kDefaultMaxSteps) {
  return RunOptions{.max_steps = max_steps, .engine = ExecEngine::kSingleStep};
}

// Every guest-visible field must match; wall time is the only thing the
// engines are allowed to change.
void ExpectSameResult(const RunResult& a, const RunResult& b, const std::string& context) {
  EXPECT_EQ(a.reason, b.reason) << context;
  EXPECT_EQ(a.exception, b.exception) << context;
  EXPECT_EQ(a.fault_addr, b.fault_addr) << context;
  EXPECT_EQ(a.rax, b.rax) << context;
  EXPECT_EQ(a.instructions, b.instructions) << context;
  EXPECT_EQ(a.deci_cycles, b.deci_cycles) << context;
  EXPECT_TRUE(a.mix == b.mix) << context;
  EXPECT_EQ(a.krx_violation, b.krx_violation) << context;
  EXPECT_EQ(a.xnr_violation, b.xnr_violation) << context;
}

void AddFunction(KernelSource* src, FunctionBuilder& b, const std::string& name) {
  src->functions.push_back(b.Build());
  src->symbols.Intern(name);
}

void AddSmcHelpers(KernelSource* src) {
  {
    FunctionBuilder b("smc_store");
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRdi, 0), Reg::kRsi));
    b.Emit(Instruction::Ret());
    AddFunction(src, b, "smc_store");
  }
  {
    FunctionBuilder b("smc_target");
    b.Emit(Instruction::MovRI(Reg::kRax, 42));
    b.Emit(Instruction::Ret());
    AddFunction(src, b, "smc_target");
  }
}

// sb_reader(buf): loops four loads of [buf] — a chained inner loop whose
// data accesses exercise the inline TLB on every iteration.
void AddReader(KernelSource* src) {
  FunctionBuilder b("sb_reader");
  int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRcx, 4));
  b.Bind(loop);
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::Ret());
  AddFunction(src, b, "sb_reader");
}

TEST(SuperblockDifferential, LmbenchOpsIdenticalAcrossThreeEngines) {
  for (const char* config_name : {"vanilla", "sfi-o3", "sfi-o4"}) {
    ProtectionConfig config;
    LayoutKind layout = LayoutKind::kKrx;
    ASSERT_TRUE(ParseConfigName(config_name, 0x51, &config, &layout));
    auto kernel = CompileKernel(MakeBenchSource(0x51), {config, layout});
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    CpuOptions opts;
    opts.mpx_enabled = config.mpx;
    Cpu sb_cpu(kernel->image.get(), CostModel(), opts);
    Cpu cached_cpu(kernel->image.get(), CostModel(), opts);
    Cpu step_cpu(kernel->image.get(), CostModel(), opts);
    auto buf = SetUpOpBuffer(*kernel->image, 0x51);
    ASSERT_TRUE(buf.ok());
    for (int pass = 0; pass < 2; ++pass) {  // pass 1 re-enters warm chains
      for (const char* op : {"sys_read_write", "sys_open_close", "sys_fstat", "sys_file_io_bw"}) {
        RunResult u = step_cpu.CallFunction(op, {*buf}, SingleStep());
        RunResult c = cached_cpu.CallFunction(op, {*buf}, Cached());
        RunResult s = sb_cpu.CallFunction(op, {*buf}, Superblocked());
        ASSERT_EQ(u.reason, StopReason::kReturned) << op;
        const std::string ctx = std::string(config_name) + "/" + op;
        ExpectSameResult(s, u, ctx + " (sb vs step)");
        ExpectSameResult(s, c, ctx + " (sb vs cached)");
      }
    }
    // The superblocked engine really chained and really took its fast paths.
    const SuperblockStats& stats = sb_cpu.superblock_cache().stats();
    EXPECT_GT(stats.chains_built, 0u) << config_name;
    EXPECT_GT(stats.blocks_chained, stats.chains_built)
        << config_name << ": no superblock chained more than one block";
    EXPECT_GT(stats.entries, 0u) << config_name;
    EXPECT_GT(stats.executed_insts, 0u) << config_name;
    EXPECT_GT(stats.fastpath_insts, 0u) << config_name;
    EXPECT_GT(stats.tlb_hits, 0u) << config_name;
    // And the other engines never touched the superblock machinery.
    EXPECT_EQ(step_cpu.superblock_cache().stats().entries, 0u);
    EXPECT_EQ(cached_cpu.superblock_cache().stats().entries, 0u);
  }
}

// The step budget must bite at exactly the same retired-instruction count:
// a chain must never replay past the limit.
TEST(SuperblockDifferential, StepLimitSweepIdentical) {
  auto kernel = CompileKernel(MakeBenchSource(0x52),
                              {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  Cpu sb_cpu(kernel->image.get());
  Cpu step_cpu(kernel->image.get());
  auto buf = SetUpOpBuffer(*kernel->image, 0x52);
  ASSERT_TRUE(buf.ok());
  for (uint64_t limit = 1; limit <= 40; ++limit) {
    RunResult u = step_cpu.CallFunction("sys_read_write", {*buf}, SingleStep(limit));
    RunResult s = sb_cpu.CallFunction("sys_read_write", {*buf}, Superblocked(limit));
    ExpectSameResult(s, u, "limit=" + std::to_string(limit));
  }
}

TEST(SuperblockInvalidation, HostPokeTripsImmediately) {
  auto kernel =
      CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  Cpu sb_cpu(&image);
  Cpu step_cpu(&image);

  auto entry = image.symbols().AddressOf("commit_creds");
  ASSERT_TRUE(entry.ok());
  RunResult warm = sb_cpu.CallFunction(*entry, {1}, Superblocked());
  ASSERT_EQ(warm.reason, StopReason::kReturned);

  // A byte smashed over the chained entry must change behavior on the very
  // next call (0xCC does not decode in this ISA, so both engines trap).
  uint8_t orig = 0;
  ASSERT_TRUE(image.PeekBytes(*entry, &orig, 1).ok());
  const uint8_t evil = 0xCC;
  ASSERT_TRUE(image.PokeBytes(*entry, &evil, 1).ok());
  RunResult u = step_cpu.CallFunction(*entry, {1}, SingleStep());
  RunResult s = sb_cpu.CallFunction(*entry, {1}, Superblocked());
  EXPECT_EQ(s.reason, StopReason::kException);
  EXPECT_NE(s.exception, ExceptionKind::kNone);
  ExpectSameResult(s, u, "poked entry");
  EXPECT_GT(sb_cpu.superblock_cache().stats().flushes, 0u);

  // Restoring the byte (another poke) invalidates the trapping chain in turn.
  ASSERT_TRUE(image.PokeBytes(*entry, &orig, 1).ok());
  RunResult again = sb_cpu.CallFunction(*entry, {1}, Superblocked());
  EXPECT_EQ(again.reason, StopReason::kReturned);
  EXPECT_EQ(again.rax, warm.rax);
}

TEST(SuperblockInvalidation, ModuleLoadUnloadInvalidates) {
  auto kernel =
      CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  ModuleLoader loader(&image);
  Cpu sb_cpu(&image);
  Cpu step_cpu(&image);

  std::vector<Function> fns;
  {
    FunctionBuilder b("sb_mod_fn");
    b.Emit(Instruction::MovRI(Reg::kRax, 7));
    b.Emit(Instruction::AddRI(Reg::kRax, 4));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    image.symbols().Intern("sb_mod_fn");
  }
  auto mod =
      CompileModule("sb_mod", fns, {}, image.symbols(), ProtectionConfig::SfiOnly(SfiLevel::kO3));
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  auto handle = loader.Load(*mod);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto entry = image.symbols().AddressOf("sb_mod_fn");
  ASSERT_TRUE(entry.ok());

  RunResult warm = sb_cpu.CallFunction(*entry, {}, Superblocked());
  ASSERT_EQ(warm.reason, StopReason::kReturned);
  EXPECT_EQ(warm.rax, 11u);

  // Unload zaps and unmaps the module text; a stale chain would happily
  // keep returning 11. Both engines must fault identically instead.
  ASSERT_TRUE(loader.Unload(*handle).ok());
  RunResult u = step_cpu.CallFunction(*entry, {}, SingleStep());
  RunResult s = sb_cpu.CallFunction(*entry, {}, Superblocked());
  EXPECT_NE(s.reason, StopReason::kReturned);
  ExpectSameResult(s, u, "unloaded module entry");
}

// Guest self-modification through a physmap synonym: the store retires
// inside a superblock (possibly through its inline TLB), must bump the text
// generation, and must kill the stale chain before its next dispatch.
TEST(SuperblockInvalidation, GuestStoreThroughPhysmapSynonym) {
  KernelSource src = MakeBaseSource();
  AddSmcHelpers(&src);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  Cpu sb_cpu(&image);
  Cpu step_cpu(&image);

  auto entry = image.symbols().AddressOf("smc_target");
  ASSERT_TRUE(entry.ok());
  const PlacedSection* text = image.FindSection(".text");
  ASSERT_NE(text, nullptr);
  ASSERT_GE(*entry, text->vaddr);
  const uint64_t frame = text->first_frame + ((*entry - text->vaddr) >> kPageShift);
  const uint64_t synonym = image.PhysmapVaddr(frame) + (*entry & (kPageSize - 1));
  ASSERT_TRUE(image.VaddrAliasesCode(synonym));

  RunResult warm = sb_cpu.CallFunction("smc_target", {}, Superblocked());
  ASSERT_EQ(warm.reason, StopReason::kReturned);
  ASSERT_EQ(warm.rax, 42u);

  auto orig = image.Peek64(*entry);
  ASSERT_TRUE(orig.ok());
  RunResult store =
      sb_cpu.CallFunction("smc_store", {synonym, 0xCCCCCCCCCCCCCCCCULL}, Superblocked());
  ASSERT_EQ(store.reason, StopReason::kReturned);

  RunResult u = step_cpu.CallFunction("smc_target", {}, SingleStep());
  RunResult s = sb_cpu.CallFunction("smc_target", {}, Superblocked());
  EXPECT_EQ(s.reason, StopReason::kException);
  EXPECT_NE(s.exception, ExceptionKind::kNone);
  ExpectSameResult(s, u, "after guest SMC");

  // And the guest can restore the bytes the same way.
  RunResult fix = sb_cpu.CallFunction("smc_store", {synonym, *orig}, Superblocked());
  ASSERT_EQ(fix.reason, StopReason::kReturned);
  RunResult again = sb_cpu.CallFunction("smc_target", {}, Superblocked());
  EXPECT_EQ(again.reason, StopReason::kReturned);
  EXPECT_EQ(again.rax, 42u);
}

// The inline TLB revalidates against the page-generation counter: an unmap
// of a cached data page faults on the very next access (no stale
// translation survives), a remap heals it, and a bare generation bump
// forces a refill without changing behavior.
TEST(SuperblockTlb, PageGenerationInvalidatesStaleTranslations) {
  KernelSource src = MakeBaseSource();
  AddReader(&src);
  auto kernel =
      CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  Cpu sb_cpu(&image);
  Cpu step_cpu(&image);
  auto buf = image.AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(image.Poke64(*buf, 0xFEED).ok());

  RunResult warm = sb_cpu.CallFunction("sb_reader", {*buf}, Superblocked());
  ASSERT_EQ(warm.reason, StopReason::kReturned);
  EXPECT_EQ(warm.rax, 0xFEEDu);
  EXPECT_GT(sb_cpu.superblock_cache().stats().tlb_hits, 0u)
      << "the loop's loads never hit the inline TLB; the test proves nothing";

  // Unmap the page the TLB has cached. Map/Unmap bump the generation, so
  // the stale translation must not serve the next load: both engines take
  // the identical page fault.
  const Pte* pte = image.page_table().Lookup(*buf);
  ASSERT_NE(pte, nullptr);
  const Pte saved = *pte;
  image.page_table().Unmap(*buf);
  RunResult u = step_cpu.CallFunction("sb_reader", {*buf}, SingleStep());
  RunResult s = sb_cpu.CallFunction("sb_reader", {*buf}, Superblocked());
  EXPECT_NE(s.reason, StopReason::kReturned);
  ExpectSameResult(s, u, "unmapped data page");

  // Remapping heals it (another bump; the TLB refills).
  image.page_table().Map(*buf, saved.frame, saved.flags);
  RunResult healed = sb_cpu.CallFunction("sb_reader", {*buf}, Superblocked());
  EXPECT_EQ(healed.reason, StopReason::kReturned);
  EXPECT_EQ(healed.rax, 0xFEEDu);

  // A bare generation bump (the in-place-PTE-mutation contract: XnR
  // present-bit flips, fault injection) forces a refill but changes nothing
  // guest-visible.
  const uint64_t misses_before = sb_cpu.superblock_cache().stats().tlb_misses;
  image.page_table().BumpGeneration();
  RunResult after_bump = sb_cpu.CallFunction("sb_reader", {*buf}, Superblocked());
  EXPECT_EQ(after_bump.reason, StopReason::kReturned);
  EXPECT_EQ(after_bump.rax, 0xFEEDu);
  EXPECT_GT(sb_cpu.superblock_cache().stats().tlb_misses, misses_before)
      << "the bumped generation did not force a TLB refill";
}

// A step observer, an XnR image and a speculation window each force the
// canonical single-step path even when the caller asked for superblocks.
TEST(SuperblockEligibility, ObserverXnrAndSpecForceSingleStep) {
  {  // Step observer: must see every retired-instruction boundary.
    auto kernel = CompileKernel(MakeBaseSource(),
                                {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
    ASSERT_TRUE(kernel.ok());
    Cpu cpu(kernel->image.get());
    uint64_t observed = 0;
    cpu.set_step_observer([&observed](const Cpu&) { ++observed; });
    RunResult r = cpu.CallFunction("commit_creds", {1}, Superblocked());
    ASSERT_EQ(r.reason, StopReason::kReturned);
    // The final ret (sentinel pop) stops the run before the observer fires —
    // the seed interpreter's historical contract.
    EXPECT_EQ(observed + 1, r.instructions);
    EXPECT_EQ(cpu.superblock_cache().stats().entries, 0u);
    EXPECT_EQ(cpu.superblock_cache().stats().chains_built, 0u);

    // Dropping the observer re-enables chaining on the same Cpu.
    cpu.set_step_observer(nullptr);
    RunResult r2 = cpu.CallFunction("commit_creds", {1}, Superblocked());
    ASSERT_EQ(r2.reason, StopReason::kReturned);
    EXPECT_GT(cpu.superblock_cache().stats().chains_built, 0u);
  }
  {  // XnR: fetch faults are the defense; predecoded replay would skip them.
    auto kernel = CompileKernel(MakeBaseSource(),
                                {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
    ASSERT_TRUE(kernel.ok());
    ASSERT_NE(EnableXnr(*kernel->image, /*window_size=*/4), nullptr);
    Cpu cpu(kernel->image.get());
    RunResult r = cpu.CallFunction("commit_creds", {1}, Superblocked());
    ASSERT_EQ(r.reason, StopReason::kReturned);
    EXPECT_EQ(cpu.superblock_cache().stats().entries, 0u);
  }
  {  // Speculation window: every conditional branch must retire observed.
    auto kernel = CompileKernel(MakeBaseSource(),
                                {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
    ASSERT_TRUE(kernel.ok());
    CpuOptions opts;
    opts.spec.enabled = true;
    Cpu cpu(kernel->image.get(), CostModel(), opts);
    RunResult r = cpu.CallFunction("commit_creds", {1}, Superblocked());
    ASSERT_EQ(r.reason, StopReason::kReturned);
    EXPECT_EQ(cpu.superblock_cache().stats().entries, 0u);
  }
}

// Cross-thread invalidation (the TSan target): reader Cpus run superblocked
// under the quiesce gate while a writer repeatedly takes the gate
// exclusively and pokes text (each poke bumps the text generation and
// flushes the chains). Every run must still return the right value; the
// atomics involved (text generation, page generation) must race-free-ly
// order against the predecode.
TEST(SuperblockConcurrency, ConcurrentInvalidationUnderQuiesceGate) {
  // sb_reader only *reads* shared guest state (each Cpu's stack is private
  // frames), so concurrent readers couple only through the text/page
  // generations — any cross-thread write the engine does on this workload
  // is a bug for TSan to catch, not test-induced noise.
  KernelSource src = MakeBaseSource();
  AddReader(&src);
  auto kernel =
      CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  auto entry = image.symbols().AddressOf("sb_reader");
  ASSERT_TRUE(entry.ok());
  uint8_t byte = 0;
  ASSERT_TRUE(image.PeekBytes(*entry, &byte, 1).ok());

  QuiesceGate gate;
  constexpr int kReaders = 2;
  constexpr int kPokes = 25;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> runs{0};
  std::atomic<int> mismatches{0};

  // One private data page per reader, identical contents, mapped before any
  // thread starts.
  std::vector<uint64_t> bufs;
  for (int i = 0; i < kReaders + 1; ++i) {
    auto buf = image.AllocDataPages(1);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE(image.Poke64(*buf, 0xFEED).ok());
    bufs.push_back(*buf);
  }

  // Baseline result from a private Cpu before any churn.
  Cpu baseline_cpu(&image);
  const RunResult baseline = baseline_cpu.CallFunction(*entry, {bufs.back()}, Superblocked());
  ASSERT_EQ(baseline.reason, StopReason::kReturned);
  ASSERT_EQ(baseline.rax, 0xFEEDu);

  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      Cpu cpu(&image);
      cpu.set_quiesce_gate(&gate);
      while (!stop.load(std::memory_order_relaxed)) {
        RunResult r = cpu.CallFunction(*entry, {bufs[static_cast<size_t>(i)]}, Superblocked());
        if (r.reason != StopReason::kReturned || r.rax != baseline.rax ||
            r.instructions != baseline.instructions) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        runs.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < kPokes; ++i) {
    gate.BeginExclusive();
    // Rewriting the same byte is semantically a no-op but bumps the text
    // generation — the pure-invalidation stressor.
    ASSERT_TRUE(image.PokeBytes(*entry, &byte, 1).ok());
    gate.EndExclusive();
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(runs.load(), 0u) << "readers never ran; the test proved nothing";
}

}  // namespace
}  // namespace krx
