// Slab allocator and vmalloc arena — including the §5.1.1 claim that
// kR^X-KAS is transparent to them (same allocator code, both layouts).
#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/kernel/allocator.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"

namespace krx {
namespace {

CompiledKernel Build(LayoutKind layout) {
  auto kernel = CompileKernel(MakeBaseSource(), {layout == LayoutKind::kKrx
                                  ? ProtectionConfig::Full(false, RaScheme::kEncrypt, 1)
                                  : ProtectionConfig::Vanilla(), layout});
  KRX_CHECK(kernel.ok());
  return std::move(*kernel);
}

class AllocatorLayoutTest : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(AllocatorLayoutTest, KmallocRoundTripAndReuse) {
  CompiledKernel kernel = Build(GetParam());
  SlabAllocator slab(kernel.image.get());
  auto a = slab.Kmalloc(48);   // -> 64-byte class
  auto b = slab.Kmalloc(48);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(PageFloor(*a), PageFloor(*b));  // same slab
  EXPECT_EQ(*b - *a, 64u);                  // size-class spacing
  // Memory is usable.
  ASSERT_TRUE(kernel.image->Poke64(*a, 0x1111).ok());
  ASSERT_TRUE(kernel.image->Poke64(*b, 0x2222).ok());
  auto va = kernel.image->Peek64(*a);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(*va, 0x1111u);
  // Freed objects are reused.
  ASSERT_TRUE(slab.Kfree(*a).ok());
  auto c = slab.Kmalloc(64);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
}

TEST_P(AllocatorLayoutTest, KmallocStress) {
  CompiledKernel kernel = Build(GetParam());
  SlabAllocator slab(kernel.image.get());
  Rng rng(7);
  std::map<uint64_t, uint64_t> live;  // addr -> tag
  for (int i = 0; i < 4000; ++i) {
    if (live.size() < 200 && (live.empty() || rng.NextBool(0.6))) {
      uint64_t size = 1 + rng.NextBelow(kPageSize);
      auto p = slab.Kmalloc(size);
      ASSERT_TRUE(p.ok());
      EXPECT_EQ(live.count(*p), 0u) << "allocator handed out a live object";
      uint64_t tag = rng.Next();
      ASSERT_TRUE(kernel.image->Poke64(*p, tag).ok());
      live[*p] = tag;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      auto v = kernel.image->Peek64(it->first);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, it->second) << "object corrupted while live";
      ASSERT_TRUE(slab.Kfree(it->first).ok());
      live.erase(it);
    }
  }
  EXPECT_EQ(slab.stats().live_objects, live.size());
  EXPECT_EQ(slab.stats().allocations - slab.stats().frees, live.size());
}

TEST_P(AllocatorLayoutTest, VmallocMapsAndGuards) {
  CompiledKernel kernel = Build(GetParam());
  VmallocArena arena(kernel.image.get());
  auto p = arena.Vmalloc(3 * kPageSize + 10);
  ASSERT_TRUE(p.ok());
  EXPECT_GE(*p, kVmallocBase);
  // All four pages usable...
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(kernel.image->Poke64(*p + static_cast<uint64_t>(i) * kPageSize, 1).ok());
  }
  // ...and the guard page after the range is unmapped.
  EXPECT_EQ(kernel.image->page_table().Lookup(*p + 4 * kPageSize), nullptr);
  // A second allocation lands past the guard.
  auto q = arena.Vmalloc(kPageSize);
  ASSERT_TRUE(q.ok());
  EXPECT_GE(*q, *p + 5 * kPageSize);
  ASSERT_TRUE(arena.Vfree(*p).ok());
  EXPECT_EQ(kernel.image->page_table().Lookup(*p), nullptr);
  EXPECT_FALSE(arena.Vfree(*p).ok());  // double vfree rejected
}

INSTANTIATE_TEST_SUITE_P(Layouts, AllocatorLayoutTest,
                         ::testing::Values(LayoutKind::kVanilla, LayoutKind::kKrx),
                         [](const ::testing::TestParamInfo<LayoutKind>& param_info) {
                           return param_info.param == LayoutKind::kKrx ? "KrxKas" : "Vanilla";
                         });

TEST(Allocator, KmallocRejectsBadSizes) {
  CompiledKernel kernel = Build(LayoutKind::kVanilla);
  SlabAllocator slab(kernel.image.get());
  EXPECT_FALSE(slab.Kmalloc(0).ok());
  EXPECT_FALSE(slab.Kmalloc(kPageSize + 1).ok());
}

TEST(Allocator, KfreeRejectsBogusPointers) {
  CompiledKernel kernel = Build(LayoutKind::kVanilla);
  SlabAllocator slab(kernel.image.get());
  auto p = slab.Kmalloc(100);  // -> 128-byte class
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(slab.Kfree(*p + 4).ok());          // interior pointer
  EXPECT_FALSE(slab.Kfree(kPhysmapBase).ok());    // non-slab page
  EXPECT_TRUE(slab.Kfree(*p).ok());
}

TEST(Allocator, AllocationsLandInTheDataRegion) {
  // The attack-relevant property: kmalloc'd objects (and with them kernel
  // stacks and heap spray) are *readable* data under kR^X.
  CompiledKernel kernel = Build(LayoutKind::kKrx);
  SlabAllocator slab(kernel.image.get());
  auto p = slab.Kmalloc(256);
  ASSERT_TRUE(p.ok());
  EXPECT_LT(*p, kernel.image->krx_edata());
  EXPECT_FALSE(kernel.image->InCodeRegion(*p));
}

}  // namespace
}  // namespace krx
