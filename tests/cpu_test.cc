// Interpreter semantics: ALU flags, condition codes, stack ops, control
// transfer, string ops, MPX, exceptions and cycle accounting.
#include <gtest/gtest.h>

#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/kernel/assembler.h"

namespace krx {
namespace {

// Builds a one-function kernel and returns (image, cpu-ready entry address).
struct MiniKernel {
  std::unique_ptr<KernelImage> image;
  uint64_t entry = 0;
};

MiniKernel MakeKernel(Function fn, LayoutKind layout = LayoutKind::kVanilla) {
  SymbolTable symbols;
  KernelLinkInput input;
  Assembler as;
  std::string name = fn.name();
  KRX_CHECK(as.Assemble(fn, &input.text).ok());
  input.phys_bytes = 4ULL << 20;
  auto image = LinkKernel(layout, std::move(input), std::move(symbols));
  KRX_CHECK(image.ok());
  MiniKernel mk;
  mk.image = std::move(*image);
  auto addr = mk.image->symbols().AddressOf(name);
  KRX_CHECK(addr.ok());
  mk.entry = *addr;
  return mk;
}

uint64_t RunWith(Function fn, const std::vector<uint64_t>& args, StopReason* reason = nullptr,
                 ExceptionKind* exc = nullptr) {
  MiniKernel mk = MakeKernel(std::move(fn));
  Cpu cpu(mk.image.get());
  RunResult r = cpu.CallFunction(mk.entry, args);
  if (reason != nullptr) {
    *reason = r.reason;
  }
  if (exc != nullptr) {
    *exc = r.exception;
  }
  return r.rax;
}

TEST(Cpu, ArithmeticAndReturnValue) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRdi));
  b.Emit(Instruction::AddRI(Reg::kRax, 5));
  b.Emit(Instruction::ImulRR(Reg::kRax, Reg::kRsi));
  b.Emit(Instruction::SubRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  EXPECT_EQ(RunWith(b.Build(), {10, 3}), (10u + 5) * 3 - 1);
}

TEST(Cpu, ShiftsAndLogic) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRdi));
  b.Emit(Instruction::ShlRI(Reg::kRax, 4));
  b.Emit(Instruction::OrRI(Reg::kRax, 0xF));
  b.Emit(Instruction::ShrRI(Reg::kRax, 2));
  b.Emit(Instruction::XorRI(Reg::kRax, 0x3));
  b.Emit(Instruction::AndRI(Reg::kRax, 0xFFFF));
  b.Emit(Instruction::Ret());
  uint64_t x = 0xAB;
  uint64_t expected = ((((x << 4) | 0xF) >> 2) ^ 0x3) & 0xFFFF;
  EXPECT_EQ(RunWith(b.Build(), {x}), expected);
}

struct CondCase {
  Cond cond;
  uint64_t a;
  uint64_t b;
  bool taken;  // after cmp a, b
};

class CondTest : public ::testing::TestWithParam<CondCase> {};

TEST_P(CondTest, CmpThenJcc) {
  const CondCase& c = GetParam();
  FunctionBuilder b("f");
  int32_t taken = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::CmpRR(Reg::kRdi, Reg::kRsi));
  b.Emit(Instruction::JccBlock(c.cond, taken));
  b.Emit(Instruction::Ret());  // not taken: rax = 0
  b.Bind(taken);
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  EXPECT_EQ(RunWith(b.Build(), {c.a, c.b}), c.taken ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, CondTest,
    ::testing::Values(
        CondCase{Cond::kE, 5, 5, true}, CondCase{Cond::kE, 5, 6, false},
        CondCase{Cond::kNe, 5, 6, true}, CondCase{Cond::kNe, 5, 5, false},
        CondCase{Cond::kA, 6, 5, true}, CondCase{Cond::kA, 5, 5, false},
        // Unsigned above: a huge kernel address is "above" a small one.
        CondCase{Cond::kA, 0xFFFFFFFFC0000000ULL, 0x1000, true},
        CondCase{Cond::kAe, 5, 5, true}, CondCase{Cond::kB, 4, 5, true},
        CondCase{Cond::kB, 5, 4, false}, CondCase{Cond::kBe, 5, 5, true},
        // Signed comparisons: -1 < 1.
        CondCase{Cond::kG, static_cast<uint64_t>(-1), 1, false},
        CondCase{Cond::kG, 2, 1, true}, CondCase{Cond::kGe, 1, 1, true},
        CondCase{Cond::kL, static_cast<uint64_t>(-1), 1, true},
        CondCase{Cond::kLe, static_cast<uint64_t>(-5), static_cast<uint64_t>(-5), true},
        CondCase{Cond::kS, static_cast<uint64_t>(-3), 1, true},
        CondCase{Cond::kNs, 3, 1, true}));

TEST(Cpu, PushPopAndStackDiscipline) {
  FunctionBuilder b("f");
  b.Emit(Instruction::PushR(Reg::kRdi));
  b.Emit(Instruction::PushR(Reg::kRsi));
  b.Emit(Instruction::PopR(Reg::kRax));   // rsi
  b.Emit(Instruction::PopR(Reg::kRcx));   // rdi
  b.Emit(Instruction::SubRR(Reg::kRax, Reg::kRcx));
  b.Emit(Instruction::Ret());
  EXPECT_EQ(RunWith(b.Build(), {10, 30}), 20u);
}

TEST(Cpu, PushfqPopfqPreservesFlags) {
  FunctionBuilder b("f");
  int32_t taken = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::CmpRR(Reg::kRdi, Reg::kRsi));  // sets flags
  b.Emit(Instruction::Pushfq());
  b.Emit(Instruction::CmpRI(Reg::kRax, 99));  // clobbers flags
  b.Emit(Instruction::Popfq());               // restores
  b.Emit(Instruction::JccBlock(Cond::kE, taken));
  b.Emit(Instruction::Ret());
  b.Bind(taken);
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  EXPECT_EQ(RunWith(b.Build(), {7, 7}), 1u);
}

TEST(Cpu, XorMemEncryptDecryptRoundTrip) {
  // The return-address encryption primitive: two xors restore the value.
  FunctionBuilder b("f");
  b.Emit(Instruction::PushR(Reg::kRdi));
  b.Emit(Instruction::MovRI(Reg::kR11, 0x5EC5EC));
  b.Emit(Instruction::XorMR(MemOperand::Base(Reg::kRsp, 0), Reg::kR11));
  b.Emit(Instruction::XorMR(MemOperand::Base(Reg::kRsp, 0), Reg::kR11));
  b.Emit(Instruction::PopR(Reg::kRax));
  b.Emit(Instruction::Ret());
  EXPECT_EQ(RunWith(b.Build(), {0xABCD}), 0xABCDu);
}

TEST(Cpu, CallAndReturn) {
  SymbolTable symbols;
  KernelLinkInput input;
  Assembler as;
  {
    FunctionBuilder callee("callee");
    callee.Emit(Instruction::MovRR(Reg::kRax, Reg::kRdi));
    callee.Emit(Instruction::AddRI(Reg::kRax, 100));
    callee.Emit(Instruction::Ret());
    KRX_CHECK(as.Assemble(callee.Build(), &input.text).ok());
  }
  {
    FunctionBuilder caller("caller");
    caller.Emit(Instruction::SubRI(Reg::kRsp, 8));
    caller.Emit(Instruction::CallSym(symbols.Intern("callee")));
    caller.Emit(Instruction::AddRI(Reg::kRax, 1));
    caller.Emit(Instruction::AddRI(Reg::kRsp, 8));
    caller.Emit(Instruction::Ret());
    KRX_CHECK(as.Assemble(caller.Build(), &input.text).ok());
  }
  input.phys_bytes = 4ULL << 20;
  auto image = LinkKernel(LayoutKind::kVanilla, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  Cpu cpu(image->get());
  RunResult r = cpu.CallFunction("caller", {5});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 106u);
}

TEST(Cpu, RepMovsCopiesAndCountsDown) {
  FunctionBuilder b("f");
  // rdi = dst, rsi = src, rdx = qwords
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::Movsq(true));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRcx));  // rcx must be 0 after
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build());
  Cpu cpu(mk.image.get());
  auto buf = mk.image->AllocDataPages(2);
  ASSERT_TRUE(buf.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(mk.image->Poke64(*buf + 8 * i, 0x1000u + static_cast<uint64_t>(i)).ok());
  }
  RunResult r = cpu.CallFunction(mk.entry, {*buf + 4096, *buf, 8});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 0u);
  for (int i = 0; i < 8; ++i) {
    auto v = mk.image->Peek64(*buf + 4096 + 8 * i);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 0x1000u + static_cast<uint64_t>(i));
  }
}

TEST(Cpu, RepeScasStopsAtMismatch) {
  // repe scasq scans while [rdi] == rax.
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRcx, 16));
  b.Emit(Instruction::MovRI(Reg::kRax, 0x77));
  b.Emit(Instruction::Scasq(true));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRcx));
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build());
  Cpu cpu(mk.image.get());
  auto buf = mk.image->AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(mk.image->Poke64(*buf + 8 * i, i < 5 ? 0x77 : 0x88).ok());
  }
  RunResult r = cpu.CallFunction(mk.entry, {*buf});
  // Scans 6 elements (5 equal + the mismatch), leaving rcx = 10.
  EXPECT_EQ(r.rax, 10u);
}

TEST(Cpu, DirectionFlagReversesStringOps) {
  // Set DF via popfq (bit 10), copy two qwords downward, clear DF again.
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRcx, 1ULL << 10));  // DF bit
  b.Emit(Instruction::PushR(Reg::kRcx));
  b.Emit(Instruction::Popfq());  // DF = 1
  b.Emit(Instruction::MovRI(Reg::kRcx, 2));
  b.Emit(Instruction::Movsq(/*rep_prefix=*/true));  // descending copy
  b.Emit(Instruction::MovRI(Reg::kRcx, 0));
  b.Emit(Instruction::PushR(Reg::kRcx));
  b.Emit(Instruction::Popfq());  // DF = 0
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRsi));
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build());
  Cpu cpu(mk.image.get());
  auto buf = mk.image->AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(mk.image->Poke64(*buf + 0, 0xAA).ok());
  ASSERT_TRUE(mk.image->Poke64(*buf + 8, 0xBB).ok());
  // src = buf+8 (copied first, then buf+0), dst = buf+1032 downward.
  RunResult r = cpu.CallFunction(mk.entry, {*buf + 1032, *buf + 8});
  ASSERT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, *buf + 8 - 16);  // rsi walked down two qwords
  auto hi = mk.image->Peek64(*buf + 1032);
  auto lo = mk.image->Peek64(*buf + 1024);
  ASSERT_TRUE(hi.ok() && lo.ok());
  EXPECT_EQ(*hi, 0xBBu);
  EXPECT_EQ(*lo, 0xAAu);
}

TEST(Cpu, RepWithZeroCountIsANop) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRcx, 0));
  b.Emit(Instruction::Movsq(/*rep_prefix=*/true));
  b.Emit(Instruction::MovRI(Reg::kRax, 0x5AFE));
  b.Emit(Instruction::Ret());
  // rsi/rdi hold garbage: a zero-count rep must not touch memory at all.
  StopReason reason;
  EXPECT_EQ(RunWith(b.Build(), {0xDEAD000000ULL, 0xBEEF000000ULL}, &reason), 0x5AFEu);
  EXPECT_EQ(reason, StopReason::kReturned);
}

TEST(Cpu, BndcuWithinBoundIsFree) {
  FunctionBuilder b("f");
  b.Emit(Instruction::LoadBnd0(0x10000));
  b.Emit(Instruction::Bndcu(MemOperand::Base(Reg::kRdi, 0)));
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  StopReason reason;
  EXPECT_EQ(RunWith(b.Build(), {0xFFFF}, &reason), 1u);
  EXPECT_EQ(reason, StopReason::kReturned);
}

TEST(Cpu, BndcuAboveBoundRaisesBr) {
  FunctionBuilder b("f");
  b.Emit(Instruction::LoadBnd0(0x10000));
  b.Emit(Instruction::Bndcu(MemOperand::Base(Reg::kRdi, 0)));
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  StopReason reason;
  ExceptionKind exc;
  RunWith(b.Build(), {0x10001}, &reason, &exc);
  EXPECT_EQ(reason, StopReason::kException);
  EXPECT_EQ(exc, ExceptionKind::kBoundRange);
}

TEST(Cpu, Int3RaisesBreakpoint) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Int3());
  b.Emit(Instruction::Ret());
  StopReason reason;
  ExceptionKind exc;
  RunWith(b.Build(), {}, &reason, &exc);
  EXPECT_EQ(reason, StopReason::kException);
  EXPECT_EQ(exc, ExceptionKind::kBreakpoint);
}

TEST(Cpu, UnmappedLoadPageFaults) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
  b.Emit(Instruction::Ret());
  StopReason reason;
  ExceptionKind exc;
  RunWith(b.Build(), {0xDEAD000000ULL}, &reason, &exc);
  EXPECT_EQ(reason, StopReason::kException);
  EXPECT_EQ(exc, ExceptionKind::kPageFault);
}

TEST(Cpu, StepLimit) {
  FunctionBuilder b("f");
  int32_t loop = b.ReserveBlock();
  b.Bind(loop);
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Emit(Instruction::JmpBlock(loop));
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build());
  Cpu cpu(mk.image.get());
  RunResult r = cpu.CallFunction(mk.entry, {}, RunOptions{.max_steps = 1000});
  EXPECT_EQ(r.reason, StopReason::kStepLimit);
  EXPECT_EQ(r.instructions, 1000u);
}

TEST(Cpu, CyclesAccumulateAndIncludeModeSwitch) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build());
  CostModel cost;
  Cpu cpu(mk.image.get(), cost);
  RunResult r = cpu.CallFunction(mk.entry, {});
  EXPECT_EQ(r.deci_cycles, cost.mode_switch + cost.alu + cost.ret);
}

TEST(Cpu, MpxModeSwitchExtraCharged) {
  FunctionBuilder b("f");
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build(), LayoutKind::kKrx);
  CostModel cost;
  CpuOptions opts;
  opts.mpx_enabled = true;
  Cpu cpu(mk.image.get(), cost, opts);
  RunResult r = cpu.CallFunction(mk.entry, {});
  EXPECT_EQ(r.deci_cycles, cost.mode_switch + cost.mpx_mode_switch_extra + cost.ret);
  // %bnd0 was loaded with _krx_edata on kernel entry.
  EXPECT_EQ(cpu.bnd0_ub(), mk.image->krx_edata());
}

TEST(Cpu, IndirectCallThroughMemory) {
  // callq *table(%rip)-style dispatch: reads a function pointer from data.
  SymbolTable symbols;
  KernelLinkInput input;
  Assembler as;
  {
    FunctionBuilder callee("target_fn");
    callee.Emit(Instruction::MovRI(Reg::kRax, 0x99));
    callee.Emit(Instruction::Ret());
    KRX_CHECK(as.Assemble(callee.Build(), &input.text).ok());
  }
  {
    FunctionBuilder caller("dispatch");
    caller.Emit(Instruction::SubRI(Reg::kRsp, 8));
    caller.Emit(Instruction::CallM(MemOperand::RipRelSym(
        symbols.Intern("fn_table", SymbolKind::kData))));
    caller.Emit(Instruction::AddRI(Reg::kRsp, 8));
    caller.Emit(Instruction::Ret());
    KRX_CHECK(as.Assemble(caller.Build(), &input.text).ok());
  }
  DataObject table;
  table.name = "fn_table";
  table.kind = SectionKind::kRodata;
  table.bytes.assign(8, 0);
  table.pointer_slots.push_back({0, symbols.Intern("target_fn")});
  input.data_objects.push_back(table);
  input.phys_bytes = 4ULL << 20;
  auto image = LinkKernel(LayoutKind::kVanilla, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  Cpu cpu(image->get());
  RunResult r = cpu.CallFunction("dispatch", {});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 0x99u);
}

}  // namespace
}  // namespace krx
