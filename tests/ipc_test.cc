// Pipe ring and checksummed socket: FIFO semantics, wrap-around,
// backpressure, corruption detection, and protection-column equivalence.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/cpu/cpu.h"
#include "src/workload/corpus.h"
#include "src/workload/ipc.h"

namespace krx {
namespace {

struct IpcEnv {
  CompiledKernel kernel;
  std::unique_ptr<Cpu> cpu;
  uint64_t buf_a = 0;  // "user" source buffer
  uint64_t buf_b = 0;  // "user" destination buffer

  int64_t Call(const char* fn, std::vector<uint64_t> args) {
    RunResult r = cpu->CallFunction(fn, args);
    KRX_CHECK(r.reason == StopReason::kReturned);
    return static_cast<int64_t>(r.rax);
  }
  void Fill(uint64_t base, uint64_t count, uint64_t seed) {
    Rng rng(seed);
    for (uint64_t i = 0; i < count; ++i) {
      KRX_CHECK(kernel.image->Poke64(base + 8 * i, rng.Next()).ok());
    }
  }
  bool Matches(uint64_t a, uint64_t b, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      auto va = kernel.image->Peek64(a + 8 * i);
      auto vb = kernel.image->Peek64(b + 8 * i);
      KRX_CHECK(va.ok() && vb.ok());
      if (*va != *vb) {
        return false;
      }
    }
    return true;
  }
};

IpcEnv MakeEnv(ProtectionConfig config = ProtectionConfig::Vanilla(),
               LayoutKind layout = LayoutKind::kVanilla) {
  KernelSource src = MakeBaseSource();
  AddIpc(&src);
  auto kernel = CompileKernel(std::move(src), {config, layout});
  KRX_CHECK(kernel.ok());
  IpcEnv env{std::move(*kernel), nullptr, 0, 0};
  env.cpu = std::make_unique<Cpu>(env.kernel.image.get());
  auto a = env.kernel.image->AllocDataPages(1);
  auto b = env.kernel.image->AllocDataPages(1);
  KRX_CHECK(a.ok() && b.ok());
  env.buf_a = *a;
  env.buf_b = *b;
  return env;
}

TEST(Pipe, WriteThenReadRoundTrip) {
  IpcEnv env = MakeEnv();
  env.Fill(env.buf_a, 16, 1);
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a, 16}), 16);
  EXPECT_EQ(env.Call("pipe_read", {env.buf_b, 16}), 16);
  EXPECT_TRUE(env.Matches(env.buf_a, env.buf_b, 16));
}

TEST(Pipe, ReadMoreThanBufferedFails) {
  IpcEnv env = MakeEnv();
  env.Fill(env.buf_a, 4, 2);
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a, 4}), 4);
  EXPECT_EQ(env.Call("pipe_read", {env.buf_b, 5}), -1);
  EXPECT_EQ(env.Call("pipe_read", {env.buf_b, 4}), 4);  // data still intact
}

TEST(Pipe, FullRingRejectsWrite) {
  IpcEnv env = MakeEnv();
  env.Fill(env.buf_a, 256, 3);
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a, 256}), 256);
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a, 256}), 256);  // exactly full
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a, 1}), -1);
  EXPECT_EQ(env.Call("pipe_read", {env.buf_b, 1}), 1);
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a, 1}), 1);  // space again
}

TEST(Pipe, WrapAroundPreservesFifo) {
  IpcEnv env = MakeEnv();
  // Push/pull 48 qwords 40 times: the cursor laps the 512-qword ring
  // several times; every chunk must survive the wrap.
  for (uint64_t round = 0; round < 40; ++round) {
    env.Fill(env.buf_a, 48, 100 + round);
    ASSERT_EQ(env.Call("pipe_write", {env.buf_a, 48}), 48) << round;
    ASSERT_EQ(env.Call("pipe_read", {env.buf_b, 48}), 48) << round;
    ASSERT_TRUE(env.Matches(env.buf_a, env.buf_b, 48)) << round;
  }
}

TEST(Pipe, InterleavedChunksKeepOrder) {
  IpcEnv env = MakeEnv();
  env.Fill(env.buf_a, 8, 7);
  env.Fill(env.buf_a + 64, 8, 8);
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a, 8}), 8);
  EXPECT_EQ(env.Call("pipe_write", {env.buf_a + 64, 8}), 8);
  EXPECT_EQ(env.Call("pipe_read", {env.buf_b, 8}), 8);
  EXPECT_TRUE(env.Matches(env.buf_a, env.buf_b, 8));
  EXPECT_EQ(env.Call("pipe_read", {env.buf_b, 8}), 8);
  EXPECT_TRUE(env.Matches(env.buf_a + 64, env.buf_b, 8));
}

TEST(Sock, DatagramRoundTripWithChecksum) {
  IpcEnv env = MakeEnv();
  env.Fill(env.buf_a, 12, 9);
  EXPECT_EQ(env.Call("sock_send", {env.buf_a, 12}), 12);
  EXPECT_EQ(env.Call("sock_recv", {env.buf_b}), 12);
  EXPECT_TRUE(env.Matches(env.buf_a, env.buf_b, 12));
  EXPECT_EQ(env.Call("sock_recv", {env.buf_b}), -1);  // empty
}

TEST(Sock, PreservesDatagramBoundaries) {
  IpcEnv env = MakeEnv();
  env.Fill(env.buf_a, 3, 10);
  env.Fill(env.buf_a + 256, 7, 11);
  EXPECT_EQ(env.Call("sock_send", {env.buf_a, 3}), 3);
  EXPECT_EQ(env.Call("sock_send", {env.buf_a + 256, 7}), 7);
  EXPECT_EQ(env.Call("sock_recv", {env.buf_b}), 3);
  EXPECT_TRUE(env.Matches(env.buf_a, env.buf_b, 3));
  EXPECT_EQ(env.Call("sock_recv", {env.buf_b}), 7);
  EXPECT_TRUE(env.Matches(env.buf_a + 256, env.buf_b, 7));
}

TEST(Sock, DetectsCorruptedPayload) {
  IpcEnv env = MakeEnv();
  env.Fill(env.buf_a, 6, 12);
  EXPECT_EQ(env.Call("sock_send", {env.buf_a, 6}), 6);
  // Memory-corruption "attacker" flips a payload qword in the ring.
  auto ring = env.kernel.image->symbols().AddressOf("ipc_sock_ring");
  ASSERT_TRUE(ring.ok());
  auto v = env.kernel.image->Peek64(*ring + 8 * 3);  // header(2) + payload[1]
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(env.kernel.image->Poke64(*ring + 8 * 3, *v ^ 0xFF).ok());
  EXPECT_EQ(env.Call("sock_recv", {env.buf_b}), -2);  // checksum mismatch
}

class IpcColumns : public ::testing::TestWithParam<int> {};

TEST_P(IpcColumns, ProtectedKernelsBehaveIdentically) {
  static const ProtectionConfig kConfigs[] = {
      ProtectionConfig::SfiOnly(SfiLevel::kO0),
      ProtectionConfig::SfiOnly(SfiLevel::kO3),
      ProtectionConfig::MpxOnly(),
      ProtectionConfig::Full(false, RaScheme::kEncrypt, 41),
      ProtectionConfig::Full(false, RaScheme::kDecoy, 41),
  };
  IpcEnv env = MakeEnv(kConfigs[static_cast<size_t>(GetParam())], LayoutKind::kKrx);
  for (uint64_t round = 0; round < 6; ++round) {
    env.Fill(env.buf_a, 20, 50 + round);
    ASSERT_EQ(env.Call("pipe_write", {env.buf_a, 20}), 20);
    ASSERT_EQ(env.Call("sock_send", {env.buf_a, 5}), 5);
    ASSERT_EQ(env.Call("pipe_read", {env.buf_b, 20}), 20);
    ASSERT_TRUE(env.Matches(env.buf_a, env.buf_b, 20));
    ASSERT_EQ(env.Call("sock_recv", {env.buf_b}), 5);
    ASSERT_TRUE(env.Matches(env.buf_a, env.buf_b, 5));
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, IpcColumns, ::testing::Range(0, 5));

}  // namespace
}  // namespace krx
