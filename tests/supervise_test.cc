// The self-healing supervision layer (src/supervise): injectable clocks,
// retry/backoff policies, watchdog lockup detection, deadline preemption,
// bounded quiesce, the degradation ladder, and checkpoint/restore — each
// proven deterministically (FakeClock) where time is involved, and
// end-to-end against compiled kernels where the Cpu is involved.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/fault/oops.h"
#include "src/fault/recovery.h"
#include "src/ir/builder.h"
#include "src/kernel/assembler.h"
#include "src/plugin/pipeline.h"
#include "src/rerand/engine.h"
#include "src/supervise/checkpoint.h"
#include "src/supervise/clock.h"
#include "src/supervise/health.h"
#include "src/supervise/retry.h"
#include "src/supervise/watchdog.h"
#include "src/workload/corpus.h"
#include "src/workload/ops.h"
#include "src/workload/sched.h"

namespace krx {
namespace {

// Real-time poll for asynchronous progress (watchdog thread scans, worker
// threads), bounded so a broken mechanism fails the test instead of hanging.
bool WaitFor(const std::function<bool()>& pred,
             std::chrono::milliseconds bound = std::chrono::milliseconds(2000)) {
  const auto deadline = std::chrono::steady_clock::now() + bound;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// An unbounded spin: the runaway-but-progressing guest deadlines exist for.
void AddSpinFunction(KernelSource* src) {
  FunctionBuilder b("spin_forever");
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::MovRI(Reg::kRcx, int64_t{1} << 40));
  const int32_t head = b.ReserveBlock();
  b.Bind(head);
  b.Emit(Instruction::AddRR(Reg::kRax, Reg::kRcx));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, head));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("spin_forever");
}

CompiledKernel MakeSpinKernel(uint64_t seed) {
  KernelSource src = MakeBaseSource();
  AddSpinFunction(&src);
  ProtectionConfig config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  config.seed = seed;
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  return std::move(*kernel);
}

// ---------------------------------------------------------------- FakeClock

TEST(FakeClock, AdvanceMovesTimeAndWakesSleepers) {
  FakeClock clock;
  const Clock::TimePoint t0 = clock.Now();
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepFor(std::chrono::milliseconds(50));
    woke.store(true);
  });
  // Hand-shake: advance only once the sleeper has registered its wait.
  // Advancing earlier would let it compute its deadline from the already-
  // moved clock and sleep past every Advance below (a loaded single-core
  // host can delay the thread arbitrarily).
  ASSERT_TRUE(WaitFor([&] { return clock.waiters() > 0; }, std::chrono::seconds(10)));
  EXPECT_FALSE(woke.load());
  // Advance in steps: partial advances must not wake the sleeper early.
  clock.Advance(std::chrono::milliseconds(20));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(woke.load());
  clock.Advance(std::chrono::milliseconds(30));
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(clock.Now() - t0, std::chrono::milliseconds(50));
}

// ------------------------------------------------------------------ Retrier

TEST(Retrier, RecoversAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Retrier retrier("test_transient", policy);
  int failures_left = 2;
  auto r = retrier.Run<int>([&](int attempt) -> Result<int> {
    if (failures_left-- > 0) {
      return InternalError("transient");
    }
    return attempt;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);  // succeeded on the third (0-based) attempt
  EXPECT_EQ(retrier.attempts(), 3);
}

TEST(Retrier, FilterStopsNonTransientFailuresImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.retry_if = [](const Status& s) { return s.message() == "transient"; };
  Retrier retrier("test_filter", policy);
  auto r = retrier.Run<int>([](int) -> Result<int> { return InternalError("permanent"); });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(retrier.attempts(), 1);
}

TEST(Retrier, ExhaustionReturnsTheLastError) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  Retrier retrier("test_exhaust", policy);
  int calls = 0;
  Status s = retrier.RunStatus([&](int attempt) {
    ++calls;
    return InternalError("attempt " + std::to_string(attempt));
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "attempt 1");
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(retrier.attempts(), 2);
}

TEST(Retrier, BackoffScheduleIsExponentialAndJitterBounded) {
  RetryPolicy policy;
  policy.base_backoff = std::chrono::microseconds(100);
  policy.multiplier = 2.0;
  Retrier plain("test_backoff", policy);
  EXPECT_EQ(plain.BackoffDelay(1), std::chrono::microseconds(100));
  EXPECT_EQ(plain.BackoffDelay(2), std::chrono::microseconds(200));
  EXPECT_EQ(plain.BackoffDelay(3), std::chrono::microseconds(400));

  policy.jitter = 0.5;
  LockedRng rng(0x7E57);
  Retrier jittered("test_jitter", policy, &rng);
  for (int k = 1; k <= 8; ++k) {
    const auto d = jittered.BackoffDelay(1);
    EXPECT_GE(d, std::chrono::microseconds(50)) << "attempt " << k;
    EXPECT_LE(d, std::chrono::microseconds(150)) << "attempt " << k;
  }
}

TEST(Retrier, SleepsThroughTheInjectedClock) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff = std::chrono::milliseconds(10);
  Retrier retrier("test_clock", policy, nullptr, &clock);
  std::atomic<bool> done{false};
  Status result = InternalError("unset");
  std::thread runner([&] {
    int failures_left = 1;
    result = retrier.RunStatus([&](int) {
      return failures_left-- > 0 ? InternalError("transient") : Status::Ok();
    });
    done.store(true);
  });
  // The retrier blocks in the fake clock between attempts; only Advance()
  // moves it forward.
  while (!done.load()) {
    clock.Advance(std::chrono::milliseconds(10));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runner.join();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(retrier.attempts(), 2);
}

// ----------------------------------------------------------------- Watchdog

TEST(Watchdog, DetectsFrozenHeartbeatFiresCallbackAndRearms) {
  FakeClock clock;
  Watchdog::Options options;
  options.tick = std::chrono::milliseconds(10);
  options.soft_ticks = 2;
  options.hard_ticks = 4;
  options.clock = &clock;
  Watchdog watchdog(options);
  std::atomic<int> hard_fired{0};
  std::atomic<uint64_t>* hb = watchdog.Watch("cpu0", [&] { hard_fired.fetch_add(1); });
  watchdog.Start();

  // The loop thread and Advance() race benignly: a bump can land before the
  // loop computes its wait deadline, so one advance is not always one scan.
  // Soft/hard lockups report once per stall episode, which makes threshold
  // advancing (tick until the counter moves, over-advancing harmless) the
  // deterministic way to drive the scan thread.
  auto advance_until = [&](const std::function<bool()>& pred) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (!pred() && std::chrono::steady_clock::now() < deadline) {
      clock.Advance(options.tick);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(pred());
  };

  // A nonzero heartbeat that stops moving: soft after 2 frozen scans, hard
  // (and the callback) after 4.
  hb->store(7, std::memory_order_relaxed);
  advance_until([&] { return watchdog.hard_lockups() >= 1; });
  EXPECT_EQ(watchdog.soft_lockups(), 1u);
  EXPECT_EQ(watchdog.hard_lockups(), 1u);
  EXPECT_EQ(hard_fired.load(), 1);

  // Both fire once per episode: more frozen scans add nothing.
  const uint64_t ticks_now = watchdog.ticks();
  advance_until([&] { return watchdog.ticks() >= ticks_now + 3; });
  EXPECT_EQ(watchdog.soft_lockups(), 1u);
  EXPECT_EQ(watchdog.hard_lockups(), 1u);
  EXPECT_EQ(hard_fired.load(), 1);

  // Progress rearms; the next freeze is a new episode.
  hb->store(8, std::memory_order_relaxed);
  advance_until([&] { return watchdog.soft_lockups() >= 2; });
  EXPECT_EQ(watchdog.soft_lockups(), 2u);

  // Idle (zero) heartbeat is not a lockup: no further episodes begin. Let a
  // couple of scans observe the idle marker (draining any scans still in
  // flight from the previous episode) before snapshotting the counters.
  hb->store(0, std::memory_order_relaxed);
  const uint64_t idle_ticks = watchdog.ticks();
  advance_until([&] { return watchdog.ticks() >= idle_ticks + 2; });
  const uint64_t soft_before_idle = watchdog.soft_lockups();
  const uint64_t hard_before_idle = watchdog.hard_lockups();
  const uint64_t drained_ticks = watchdog.ticks();
  advance_until([&] { return watchdog.ticks() >= drained_ticks + 5; });
  EXPECT_EQ(watchdog.soft_lockups(), soft_before_idle);
  EXPECT_EQ(watchdog.hard_lockups(), hard_before_idle);
  watchdog.Stop();

  const std::vector<Watchdog::LockupEvent> events = watchdog.events();
  ASSERT_GE(events.size(), 3u);  // soft@7, hard@7, soft@8, maybe hard@8
  EXPECT_EQ(events[0].label, "cpu0");
  EXPECT_FALSE(events[0].hard);
  EXPECT_EQ(events[0].heartbeat, 7u);
  EXPECT_TRUE(events[1].hard);
  EXPECT_EQ(events[1].heartbeat, 7u);
  EXPECT_FALSE(events[2].hard);
  EXPECT_EQ(events[2].heartbeat, 8u);
}

// --------------------------------------------------- Deadline & preemption

TEST(Deadline, PreemptsRunawayGuestIntoDeadlineExceeded) {
  CompiledKernel kernel = MakeSpinKernel(0xDEAD1);
  Cpu cpu(kernel.image.get());
  RunOptions run;
  run.max_steps = 4'000'000'000ULL;  // far beyond what any deadline lets retire
  run.deadline_us = 1'000;
  const RunResult r = cpu.CallFunction("spin_forever", {}, run);
  EXPECT_EQ(r.reason, StopReason::kDeadlineExceeded);
  EXPECT_GT(r.instructions, 0u);

  // The Cpu is immediately reusable, and an unarmed run is never preempted:
  // the same guest under no deadline stops only on its step budget.
  RunOptions bounded;
  bounded.max_steps = 10'000;
  const RunResult ok = cpu.CallFunction("spin_forever", {}, bounded);
  EXPECT_EQ(ok.reason, StopReason::kStepLimit);
}

TEST(Deadline, RequestPreemptStopsARunFromAnotherThread) {
  CompiledKernel kernel = MakeSpinKernel(0xDEAD2);
  Cpu cpu(kernel.image.get());
  std::atomic<uint64_t> heartbeat{0};
  cpu.set_heartbeat_slot(&heartbeat);
  RunResult r;
  std::thread guest([&] {
    RunOptions run;
    run.max_steps = 4'000'000'000ULL;  // no deadline armed
    r = cpu.CallFunction("spin_forever", {}, run);
  });
  // Wait until the run is provably in flight (preempt requests are cleared
  // at run start), then preempt it from this thread.
  ASSERT_TRUE(WaitFor([&] { return heartbeat.load(std::memory_order_relaxed) != 0; }));
  cpu.RequestPreempt();
  guest.join();
  EXPECT_EQ(r.reason, StopReason::kDeadlineExceeded);
  // Run end parks the heartbeat at the idle marker.
  EXPECT_EQ(heartbeat.load(std::memory_order_relaxed), 0u);
  cpu.set_heartbeat_slot(nullptr);
}

// -------------------------------------------------------------- QuiesceGate

TEST(QuiesceGate, BoundedWriterTimesOutReleasesReadersAndRecovers) {
  QuiesceGate gate;
  gate.BeginRun();  // a reader that never drains
  EXPECT_FALSE(gate.BeginExclusiveFor(std::chrono::milliseconds(20)));

  // The failed writer must not leave readers held out (writer priority is
  // released on timeout): a new reader gets through promptly.
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    gate.BeginRun();
    gate.EndRun();
    reader_done.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return reader_done.load(); }));
  reader.join();

  gate.EndRun();
  ASSERT_TRUE(gate.BeginExclusiveFor(std::chrono::milliseconds(20)));
  gate.EndExclusive();
}

TEST(QuiesceGate, EngineAbortsEpochWhenQuiesceTimesOut) {
  CompiledKernel kernel = MakeSpinKernel(0x9A7E);
  RerandOptions options;
  options.quiesce_timeout_ms = 30;
  RerandEngine engine(&kernel, options);

  engine.gate().BeginRun();  // a wedged reader: the epoch must not hang
  auto aborted = engine.RunEpoch();
  EXPECT_FALSE(aborted.ok());
  EXPECT_EQ(engine.epoch_failures(), 1u);
  EXPECT_EQ(engine.epochs_completed(), 0u);
  engine.gate().EndRun();

  auto committed = engine.RunEpoch();
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(engine.epochs_completed(), 1u);
}

TEST(Retrier, EpochRetryRecoversFromATransientFailpoint) {
  CompiledKernel kernel = MakeSpinKernel(0x9A7F);
  RerandEngine engine(&kernel);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.retry_if = [&](const Status&) {
    engine.clear_failpoint();  // the fault heals before the retry
    return true;
  };
  engine.set_retry_policy(policy);
  engine.set_failpoint(RerandStep::kRelayout);
  auto r = engine.RunEpochWithRetry();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(engine.epoch_failures(), 1u);
  EXPECT_EQ(engine.epochs_completed(), 1u);
}

TEST(Retrier, ModuleLoadRetriesThroughTheTransactionalRollback) {
  auto kernel = CompileKernel(
      MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 0x3371),
                         LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  SymbolTable& symbols = kernel->image->symbols();
  FunctionBuilder b("retry_mod_fn");
  b.Emit(Instruction::MovRI(Reg::kRax, 41));
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  std::vector<Function> fns;
  fns.push_back(b.Build());
  symbols.Intern("retry_mod_fn");
  auto module = CompileModule("retry_mod", std::move(fns), {}, symbols, kernel->config);
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  ModuleLoader loader(kernel->image.get());
  loader.set_failpoint(ModuleLoadStep::kRelocate);

  // Sticky failpoint + no-retry policy: the load fails for good.
  RetryPolicy give_up;
  give_up.max_attempts = 1;
  EXPECT_FALSE(LoadModuleWithRetry(loader, *module, give_up).ok());

  // Healing filter: each rolled-back attempt is side-effect free, so the
  // retry starts from a clean image and succeeds.
  RetryPolicy heal;
  heal.max_attempts = 2;
  heal.retry_if = [&](const Status&) {
    loader.clear_failpoint();
    return true;
  };
  auto handle = LoadModuleWithRetry(loader, *module, heal);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  Cpu cpu(kernel->image.get());
  const RunResult r = cpu.CallFunction("retry_mod_fn", {});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 42u);
}

// ------------------------------------------------------------- HealthState

TEST(HealthState, LadderDegradesPerAspectAndOnlyResetRecovers) {
  HealthState health;
  EXPECT_TRUE(health.block_cache_enabled());
  EXPECT_TRUE(health.rerand_timer_enabled());
  EXPECT_FALSE(health.cpu_quarantined(0));

  // A success between failures resets the consecutive counter.
  health.RecordBlockCacheCorruption("gen mismatch");
  health.RecordBlockCacheOk();
  health.RecordBlockCacheCorruption("gen mismatch");
  EXPECT_TRUE(health.block_cache_enabled());
  health.RecordBlockCacheCorruption("differential divergence");
  EXPECT_FALSE(health.block_cache_enabled());

  health.RecordEpochRollback("relayout failed");
  EXPECT_TRUE(health.rerand_timer_enabled());
  health.RecordEpochRollback("relayout failed again");
  EXPECT_FALSE(health.rerand_timer_enabled());

  health.RecordHardLockup(2, "watchdog");
  EXPECT_TRUE(health.cpu_quarantined(2));
  EXPECT_FALSE(health.cpu_quarantined(0));
  EXPECT_EQ(health.quarantined_cpus(), 1);

  const std::vector<HealthTransition> transitions = health.transitions();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].aspect, HealthAspect::kBlockCache);
  EXPECT_EQ(transitions[1].aspect, HealthAspect::kRerandTimer);
  EXPECT_EQ(transitions[2].aspect, HealthAspect::kCpu);
  EXPECT_EQ(transitions[2].cpu, 2);

  // Degradation is one-way; a later success does not climb back.
  health.RecordEpochCommit();
  EXPECT_FALSE(health.rerand_timer_enabled());

  health.Reset();
  EXPECT_TRUE(health.block_cache_enabled());
  EXPECT_TRUE(health.rerand_timer_enabled());
  EXPECT_FALSE(health.cpu_quarantined(2));
}

// ------------------------------------------------------ Checkpoint/restore

// The differential gate: after an unsurvivable trap, a restored machine must
// replay the exact post-capture result series an uninterrupted run produced.
TEST(Checkpoint, RestoreReplaysBitIdenticalToUninterrupted) {
  KernelSource src = MakeBaseSource();
  OpProfile profile;
  profile.name = "ckpt";
  profile.loop_iters = 4;
  profile.coalescible_reads = 2;
  profile.chased_reads = 1;
  profile.writes = 2;  // runs mutate the buffer: the result series evolves
  profile.alu = 2;
  const std::string op = EmitKernelOp(&src, profile);
  ProtectionConfig config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  config.seed = 0xC4B7;
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  KernelImage& image = *kernel->image;
  auto buffer = SetUpOpBuffer(image, 0xC4B7);
  ASSERT_TRUE(buffer.ok());
  Cpu cpu(&image);

  for (int i = 0; i < 3; ++i) {  // pre-capture history, discarded
    ASSERT_EQ(cpu.CallFunction(op, {*buffer}).reason, StopReason::kReturned);
  }

  CheckpointManager ckpt(&image);
  ckpt.TrackCpu(&cpu);
  ASSERT_TRUE(ckpt.Capture().ok());
  EXPECT_GT(ckpt.snapshot_bytes(), 0u);

  std::vector<uint64_t> uninterrupted;
  for (int i = 0; i < 3; ++i) {
    const RunResult r = cpu.CallFunction(op, {*buffer});
    ASSERT_EQ(r.reason, StopReason::kReturned);
    uninterrupted.push_back(r.rax);
  }

  // The unsurvivable event: tripwire byte on the op entry; the next run
  // traps at instruction zero.
  auto entry = image.symbols().AddressOf(op);
  ASSERT_TRUE(entry.ok());
  const uint8_t int3 = kTextPadByte;  // Opcode::kInt3 in the krx64 encoding
  ASSERT_TRUE(image.PokeBytes(*entry, &int3, 1).ok());
  image.BumpTextGeneration();
  const RunResult trapped = cpu.CallFunction(op, {*buffer});
  EXPECT_EQ(trapped.reason, StopReason::kException);
  EXPECT_EQ(trapped.exception, ExceptionKind::kBreakpoint);

  ASSERT_TRUE(ckpt.Restore().ok());
  EXPECT_EQ(ckpt.restores(), 1u);
  std::vector<uint64_t> replayed;
  for (int i = 0; i < 3; ++i) {
    const RunResult r = cpu.CallFunction(op, {*buffer});
    ASSERT_EQ(r.reason, StopReason::kReturned) << "restore did not heal the text";
    replayed.push_back(r.rax);
  }
  EXPECT_EQ(replayed, uninterrupted);
}

// Restore composes with the oops supervisor: a panic-policy trap is
// unsurvivable, the checkpoint rewinds past it, and the replacement
// kill-task policy then survives the same rogue workload.
TEST(Checkpoint, RestoreAfterPanicThenKillTaskSurvives) {
  KernelSource src = MakeBaseSource();
  AddSched(&src, /*with_rogue_worker=*/true);
  ProtectionConfig config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  config.seed = 0x0095;
  for (const std::string& name : SchedExemptFunctions()) {
    config.exempt_functions.insert(name);
  }
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  ASSERT_TRUE(SetUpTaskStacks(*kernel->image).ok());
  Cpu cpu(kernel->image.get());

  CheckpointManager ckpt(kernel->image.get());
  ckpt.TrackCpu(&cpu);
  ASSERT_TRUE(ckpt.Capture().ok());  // pre-spawn safe point

  auto spawn_tasks = [&] {
    for (uint64_t slot : {0ULL, 1ULL, 2ULL}) {
      const RunResult r = cpu.CallFunction("sys_spawn", {slot});
      ASSERT_EQ(r.reason, StopReason::kReturned);
      ASSERT_GE(static_cast<int64_t>(r.rax), 0);
    }
  };

  spawn_tasks();
  OopsSupervisor panic(&cpu, OopsPolicy::kPanic);
  const RecoveryOutcome dead = panic.Run("sched_run", {64});
  EXPECT_FALSE(dead.survived());
  ASSERT_FALSE(dead.oopses.empty());

  // Rewind the whole machine — task table, worker counters, stacks, the
  // oopsed Cpu state — and run the same workload under the survivable
  // policy.
  ASSERT_TRUE(ckpt.Restore().ok());
  spawn_tasks();
  OopsSupervisor reaper(&cpu, OopsPolicy::kKillTask);
  const RecoveryOutcome alive = reaper.Run("sched_run", {64});
  EXPECT_TRUE(alive.survived());
  ASSERT_EQ(alive.killed_tasks.size(), 1u);
  EXPECT_EQ(alive.killed_tasks[0], 3u);

  auto worker_c = kernel->image->symbols().AddressOf("worker_c_runs");
  ASSERT_TRUE(worker_c.ok());
  auto runs = kernel->image->Peek64(*worker_c);
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(*runs, 3u);
}

}  // namespace
}  // namespace krx
