// Cooperative scheduler with real stack switching, under every protection
// column. task_switch is pass-exempt (assembly, §6); everything around it
// is fully instrumented.
#include <gtest/gtest.h>

#include "src/cpu/cpu.h"
#include "src/workload/corpus.h"
#include "src/workload/sched.h"

namespace krx {
namespace {

struct SchedEnv {
  CompiledKernel kernel;
  std::unique_ptr<Cpu> cpu;

  uint64_t Global(const char* name) {
    auto addr = kernel.image->symbols().AddressOf(name);
    KRX_CHECK(addr.ok());
    auto v = kernel.image->Peek64(*addr);
    KRX_CHECK(v.ok());
    return *v;
  }
};

SchedEnv MakeEnv(ProtectionConfig config, LayoutKind layout) {
  KernelSource src = MakeBaseSource();
  AddSched(&src);
  for (const std::string& name : SchedExemptFunctions()) {
    config.exempt_functions.insert(name);
  }
  auto kernel = CompileKernel(std::move(src), {config, layout});
  KRX_CHECK(kernel.ok());
  SchedEnv env{std::move(*kernel), nullptr};
  KRX_CHECK(SetUpTaskStacks(*env.kernel.image).ok());
  env.cpu = std::make_unique<Cpu>(env.kernel.image.get());
  return env;
}

TEST(Sched, SpawnAssignsSlots) {
  SchedEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  RunResult a = env.cpu->CallFunction("sys_spawn", {0});
  RunResult b = env.cpu->CallFunction("sys_spawn", {1});
  ASSERT_EQ(a.reason, StopReason::kReturned);
  ASSERT_EQ(b.reason, StopReason::kReturned);
  EXPECT_EQ(a.rax, 1u);
  EXPECT_EQ(b.rax, 2u);
}

TEST(Sched, SpawnExhaustsSlots) {
  SchedEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  for (int i = 1; i < kSchedMaxTasks; ++i) {
    EXPECT_EQ(env.cpu->CallFunction("sys_spawn", {0}).rax, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(static_cast<int64_t>(env.cpu->CallFunction("sys_spawn", {0}).rax), -1);
}

TEST(Sched, SpawnRejectsBadEntrySlot) {
  SchedEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  EXPECT_EQ(static_cast<int64_t>(env.cpu->CallFunction("sys_spawn", {2}).rax), -1);
  EXPECT_EQ(static_cast<int64_t>(
                env.cpu->CallFunction("sys_spawn", {static_cast<uint64_t>(-1)}).rax),
            -1);
}

TEST(Sched, YieldWithNoOtherTasksReturnsImmediately) {
  SchedEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  RunResult r = env.cpu->CallFunction("sched_yield", {});
  EXPECT_EQ(r.reason, StopReason::kReturned);
}

TEST(Sched, WorkersInterleaveAndFinish) {
  SchedEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  ASSERT_EQ(env.cpu->CallFunction("sys_spawn", {0}).rax, 1u);  // worker_a
  ASSERT_EQ(env.cpu->CallFunction("sys_spawn", {1}).rax, 2u);  // worker_b
  RunResult r = env.cpu->CallFunction("sched_run", {64});
  ASSERT_EQ(r.reason, StopReason::kReturned);
  EXPECT_GE(r.rax, 64u);
  // Round-robin: the two workers ran essentially the same number of times.
  uint64_t a = env.Global("worker_a_runs");
  uint64_t b = env.Global("worker_b_runs");
  EXPECT_GE(a, 30u);
  EXPECT_GE(b, 30u);
  EXPECT_LE(a > b ? a - b : b - a, 1u);
  EXPECT_EQ(a + b, env.Global("sched_counter"));
}

class SchedColumns : public ::testing::TestWithParam<int> {};

TEST_P(SchedColumns, ContextSwitchingSurvivesEveryColumn) {
  static const ProtectionConfig kConfigs[] = {
      ProtectionConfig::SfiOnly(SfiLevel::kO0),
      ProtectionConfig::SfiOnly(SfiLevel::kO3),
      ProtectionConfig::MpxOnly(),
      ProtectionConfig::DiversifyOnly(RaScheme::kNone, 61),
      ProtectionConfig::Full(false, RaScheme::kEncrypt, 61),
      ProtectionConfig::Full(false, RaScheme::kDecoy, 61),
      ProtectionConfig::Full(true, RaScheme::kEncrypt, 61),
  };
  SchedEnv env = MakeEnv(kConfigs[static_cast<size_t>(GetParam())], LayoutKind::kKrx);
  if (env.kernel.config.mpx) {
    CpuOptions opts;
    opts.mpx_enabled = true;
    env.cpu = std::make_unique<Cpu>(env.kernel.image.get(), CostModel(), opts);
  }
  ASSERT_EQ(env.cpu->CallFunction("sys_spawn", {0}).rax, 1u);
  ASSERT_EQ(env.cpu->CallFunction("sys_spawn", {1}).rax, 2u);
  RunResult r = env.cpu->CallFunction("sched_run", {64});
  ASSERT_EQ(r.reason, StopReason::kReturned)
      << ExceptionKindName(r.exception) << (r.krx_violation ? " krx" : "");
  EXPECT_GE(r.rax, 64u);
  uint64_t a = env.Global("worker_a_runs");
  uint64_t b = env.Global("worker_b_runs");
  EXPECT_GE(a + b, 64u);
  EXPECT_LE(a > b ? a - b : b - a, 1u);
}

INSTANTIATE_TEST_SUITE_P(Configs, SchedColumns, ::testing::Range(0, 7));

}  // namespace
}  // namespace krx
