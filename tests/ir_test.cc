// CFG IR, builder discipline and %rflags liveness analysis.
#include <gtest/gtest.h>

#include "src/ir/analysis.h"
#include "src/ir/builder.h"
#include "src/ir/liveness.h"

namespace krx {
namespace {

TEST(Builder, LinearFunction) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  EXPECT_EQ(fn.blocks().size(), 1u);
  EXPECT_EQ(fn.InstCount(), 2u);
}

TEST(Builder, BranchOpensBlocks) {
  FunctionBuilder b("f");
  int32_t target = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, target));
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Bind(target);
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  EXPECT_EQ(fn.blocks().size(), 3u);
  EXPECT_TRUE(fn.Validate().ok());
}

TEST(Function, SuccessorsFallthroughAndBranch) {
  FunctionBuilder b("f");
  int32_t target = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, target));
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Bind(target);
  b.Emit(Instruction::Ret());
  Function fn = b.Build();

  // Block 0 ends with jcc: successors = {target, fallthrough}.
  auto succs = fn.SuccessorsOf(0);
  ASSERT_EQ(succs.size(), 2u);
  // Ret block: no successors.
  int32_t ret_idx = fn.IndexOfBlock(target);
  EXPECT_TRUE(fn.SuccessorsOf(ret_idx).empty());
}

TEST(Function, ValidateRejectsUnknownTarget) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::JmpBlock(99));
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Function, ValidateRejectsBranchToPhantom) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  int32_t b1 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::JmpBlock(b1));
  fn.block_by_id(b1).phantom = true;
  fn.block_by_id(b1).insts.push_back(Instruction::Int3());
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Function, ValidateRejectsTerminatorMidBlock) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::Ret());
  fn.block_by_id(b0).insts.push_back(Instruction::Nop());
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Function, ValidateRejectsTrailingFallthrough) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::Nop());
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Liveness, DeadAfterImmediateRedefinition) {
  // cmp; mov; cmp; jcc — flags from the first cmp die at the second cmp.
  FunctionBuilder b("f");
  int32_t target = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 1));   // 0
  b.Emit(Instruction::MovRR(Reg::kRbx, Reg::kRax));  // 1
  b.Emit(Instruction::CmpRI(Reg::kRbx, 2));   // 2
  b.Emit(Instruction::JccBlock(Cond::kE, target));   // 3
  b.Emit(Instruction::Ret());
  b.Bind(target);
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  FlagsLiveness live(fn);
  // Between cmp#1 and cmp#2 the next flag event is the *write* at cmp#2, so
  // the first cmp's flags are dead there.
  EXPECT_FALSE(live.LiveBefore(0, 1));
  EXPECT_FALSE(live.LiveBefore(0, 2));  // just before cmp#2: dead (redefined)
  EXPECT_TRUE(live.LiveBefore(0, 3));   // just before jcc: live
}

TEST(Liveness, LiveAcrossBlockBoundary) {
  // Block A sets flags, falls through to block B which branches on them.
  Function fn("f");
  int32_t a = fn.AddBlock();
  int32_t bb = fn.AddBlock();
  int32_t c = fn.AddBlock();
  fn.block_by_id(a).insts.push_back(Instruction::CmpRI(Reg::kRax, 0));
  fn.block_by_id(bb).insts.push_back(Instruction::MovRR(Reg::kRbx, Reg::kRcx));
  fn.block_by_id(bb).insts.push_back(Instruction::JccBlock(Cond::kE, c));
  fn.block_by_id(bb).insts.push_back(Instruction::JmpBlock(c));
  fn.block_by_id(c).insts.push_back(Instruction::Ret());
  ASSERT_TRUE(fn.Validate().ok());
  FlagsLiveness live(fn);
  EXPECT_TRUE(live.LiveOut(0));
  EXPECT_TRUE(live.LiveIn(1));
  EXPECT_FALSE(live.LiveIn(2));
  EXPECT_TRUE(live.LiveBefore(0, 1));  // after the cmp, flags live out of A
}

TEST(Liveness, CallsClobberFlags) {
  FunctionBuilder b("f");
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::CallSym(0));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  FlagsLiveness live(fn);
  // Before the call: the next flag event is the call's clobber, so dead.
  EXPECT_FALSE(live.LiveBefore(0, 1));
}

TEST(Liveness, LoopCarriedFlags) {
  // loop: sub; jne loop — at loop entry flags are dead (sub redefines),
  // after sub they are live (consumed by jne).
  FunctionBuilder b("f");
  int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRcx, 10));
  b.Bind(loop);
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  FlagsLiveness live(fn);
  int32_t loop_idx = fn.IndexOfBlock(loop);
  EXPECT_FALSE(live.LiveIn(loop_idx));
  EXPECT_TRUE(live.LiveBefore(loop_idx, 1));
}

TEST(Dominators, DiamondJoinDominatedOnlyByEntry) {
  // layout: 0 = [cmp, jcc] -> {1, 2}; 1 = [add, jmp join]; 2 = arm; 3 = join.
  FunctionBuilder b("f");
  int32_t join = b.ReserveBlock();
  int32_t arm = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, arm));
  b.Emit(Instruction::AddRI(Reg::kRbx, 1));
  b.Emit(Instruction::JmpBlock(join));
  b.Bind(arm);
  b.Emit(Instruction::AddRI(Reg::kRbx, 2));
  b.Bind(join);
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  DominatorTree dom(fn);
  EXPECT_EQ(dom.Idom(0), -1);
  EXPECT_EQ(dom.Idom(1), 0);
  EXPECT_EQ(dom.Idom(2), 0);
  EXPECT_EQ(dom.Idom(3), 0);  // neither arm dominates the join
  EXPECT_TRUE(dom.Dominates(0, 3));
  EXPECT_FALSE(dom.Dominates(1, 3));
  EXPECT_FALSE(dom.Dominates(2, 3));
  EXPECT_TRUE(dom.Dominates(3, 3));  // reflexive
  EXPECT_TRUE(FindNaturalLoops(fn, dom).empty());
}

TEST(Dominators, LoopHeaderDominatesBodyAndLatch) {
  // layout: 0 = [mov]; 1 = head [add]; 2 = latch [sub, jne head]; 3 = [ret].
  FunctionBuilder b("f");
  int32_t head = b.ReserveBlock();
  int32_t latch = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRcx, 4));
  b.Bind(head);
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Bind(latch);
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, head));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  DominatorTree dom(fn);
  EXPECT_EQ(dom.Idom(1), 0);
  EXPECT_EQ(dom.Idom(2), 1);
  EXPECT_TRUE(dom.Dominates(1, 2));
  EXPECT_FALSE(dom.Dominates(2, 1));

  std::vector<NaturalLoop> loops = FindNaturalLoops(fn, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1);
  EXPECT_EQ(loops[0].latches, std::vector<int32_t>{2});
  EXPECT_EQ(loops[0].body, (std::set<int32_t>{1, 2}));
}

TEST(Congruence, DerivationRules) {
  Reg dst = Reg::kRax;
  Reg src = Reg::kRax;
  int64_t delta = -1;
  // mov %rdi, %rsi: rsi = rdi + 0.
  ASSERT_TRUE(RegOffsetDerivation(Instruction::MovRR(Reg::kRsi, Reg::kRdi), &dst, &src, &delta));
  EXPECT_EQ(dst, Reg::kRsi);
  EXPECT_EQ(src, Reg::kRdi);
  EXPECT_EQ(delta, 0);
  // add $32, %rdi: rdi = rdi + 32.
  ASSERT_TRUE(RegOffsetDerivation(Instruction::AddRI(Reg::kRdi, 32), &dst, &src, &delta));
  EXPECT_EQ(dst, Reg::kRdi);
  EXPECT_EQ(src, Reg::kRdi);
  EXPECT_EQ(delta, 32);
  // lea 40(%rdi), %rsi: rsi = rdi + 40.
  ASSERT_TRUE(RegOffsetDerivation(Instruction::Lea(Reg::kRsi, MemOperand::Base(Reg::kRdi, 40)),
                                  &dst, &src, &delta));
  EXPECT_EQ(dst, Reg::kRsi);
  EXPECT_EQ(src, Reg::kRdi);
  EXPECT_EQ(delta, 40);
  // Unsigned checks: negative deltas may wrap, so they never derive.
  EXPECT_FALSE(RegOffsetDerivation(Instruction::AddRI(Reg::kRdi, -8), &dst, &src, &delta));
  EXPECT_FALSE(RegOffsetDerivation(Instruction::Lea(Reg::kRsi, MemOperand::Base(Reg::kRdi, -8)),
                                   &dst, &src, &delta));
  // Indexed and rip-relative leas depend on more than one input value.
  EXPECT_FALSE(RegOffsetDerivation(
      Instruction::Lea(Reg::kRsi, MemOperand::BaseIndex(Reg::kRdi, Reg::kRcx, 8, 0)), &dst, &src,
      &delta));
  EXPECT_FALSE(
      RegOffsetDerivation(Instruction::Lea(Reg::kRsi, MemOperand::RipRel(0x10)), &dst, &src,
                          &delta));
  // Constant loads are not derivations.
  EXPECT_FALSE(RegOffsetDerivation(Instruction::MovRI(Reg::kRsi, 5), &dst, &src, &delta));
  // sub $8, %rdi: rdi = rdi - 8 — a *negative* delta; the O4 span domain
  // must prove the address cannot wrap before using it.
  ASSERT_TRUE(RegOffsetDerivation(Instruction::SubRI(Reg::kRdi, 8), &dst, &src, &delta));
  EXPECT_EQ(dst, Reg::kRdi);
  EXPECT_EQ(src, Reg::kRdi);
  EXPECT_EQ(delta, -8);
  EXPECT_FALSE(RegOffsetDerivation(Instruction::SubRI(Reg::kRdi, -8), &dst, &src, &delta));
}

TEST(RegHelpers, WritesAndReads) {
  EXPECT_TRUE(InstructionWritesReg(Instruction::Lea(Reg::kR11, MemOperand::Base(Reg::kRdi, 0)),
                                   Reg::kR11));
  EXPECT_FALSE(InstructionWritesReg(Instruction::PushR(Reg::kR11), Reg::kR11));
  EXPECT_TRUE(InstructionReadsReg(Instruction::PushR(Reg::kR11), Reg::kR11));
  EXPECT_TRUE(InstructionWritesReg(Instruction::Movsq(), Reg::kRsi));
}

}  // namespace
}  // namespace krx
