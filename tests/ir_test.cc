// CFG IR, builder discipline and %rflags liveness analysis.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/liveness.h"

namespace krx {
namespace {

TEST(Builder, LinearFunction) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  EXPECT_EQ(fn.blocks().size(), 1u);
  EXPECT_EQ(fn.InstCount(), 2u);
}

TEST(Builder, BranchOpensBlocks) {
  FunctionBuilder b("f");
  int32_t target = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, target));
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Bind(target);
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  EXPECT_EQ(fn.blocks().size(), 3u);
  EXPECT_TRUE(fn.Validate().ok());
}

TEST(Function, SuccessorsFallthroughAndBranch) {
  FunctionBuilder b("f");
  int32_t target = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, target));
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Bind(target);
  b.Emit(Instruction::Ret());
  Function fn = b.Build();

  // Block 0 ends with jcc: successors = {target, fallthrough}.
  auto succs = fn.SuccessorsOf(0);
  ASSERT_EQ(succs.size(), 2u);
  // Ret block: no successors.
  int32_t ret_idx = fn.IndexOfBlock(target);
  EXPECT_TRUE(fn.SuccessorsOf(ret_idx).empty());
}

TEST(Function, ValidateRejectsUnknownTarget) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::JmpBlock(99));
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Function, ValidateRejectsBranchToPhantom) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  int32_t b1 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::JmpBlock(b1));
  fn.block_by_id(b1).phantom = true;
  fn.block_by_id(b1).insts.push_back(Instruction::Int3());
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Function, ValidateRejectsTerminatorMidBlock) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::Ret());
  fn.block_by_id(b0).insts.push_back(Instruction::Nop());
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Function, ValidateRejectsTrailingFallthrough) {
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  fn.block_by_id(b0).insts.push_back(Instruction::Nop());
  EXPECT_FALSE(fn.Validate().ok());
}

TEST(Liveness, DeadAfterImmediateRedefinition) {
  // cmp; mov; cmp; jcc — flags from the first cmp die at the second cmp.
  FunctionBuilder b("f");
  int32_t target = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 1));   // 0
  b.Emit(Instruction::MovRR(Reg::kRbx, Reg::kRax));  // 1
  b.Emit(Instruction::CmpRI(Reg::kRbx, 2));   // 2
  b.Emit(Instruction::JccBlock(Cond::kE, target));   // 3
  b.Emit(Instruction::Ret());
  b.Bind(target);
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  FlagsLiveness live(fn);
  // Between cmp#1 and cmp#2 the next flag event is the *write* at cmp#2, so
  // the first cmp's flags are dead there.
  EXPECT_FALSE(live.LiveBefore(0, 1));
  EXPECT_FALSE(live.LiveBefore(0, 2));  // just before cmp#2: dead (redefined)
  EXPECT_TRUE(live.LiveBefore(0, 3));   // just before jcc: live
}

TEST(Liveness, LiveAcrossBlockBoundary) {
  // Block A sets flags, falls through to block B which branches on them.
  Function fn("f");
  int32_t a = fn.AddBlock();
  int32_t bb = fn.AddBlock();
  int32_t c = fn.AddBlock();
  fn.block_by_id(a).insts.push_back(Instruction::CmpRI(Reg::kRax, 0));
  fn.block_by_id(bb).insts.push_back(Instruction::MovRR(Reg::kRbx, Reg::kRcx));
  fn.block_by_id(bb).insts.push_back(Instruction::JccBlock(Cond::kE, c));
  fn.block_by_id(bb).insts.push_back(Instruction::JmpBlock(c));
  fn.block_by_id(c).insts.push_back(Instruction::Ret());
  ASSERT_TRUE(fn.Validate().ok());
  FlagsLiveness live(fn);
  EXPECT_TRUE(live.LiveOut(0));
  EXPECT_TRUE(live.LiveIn(1));
  EXPECT_FALSE(live.LiveIn(2));
  EXPECT_TRUE(live.LiveBefore(0, 1));  // after the cmp, flags live out of A
}

TEST(Liveness, CallsClobberFlags) {
  FunctionBuilder b("f");
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::CallSym(0));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  FlagsLiveness live(fn);
  // Before the call: the next flag event is the call's clobber, so dead.
  EXPECT_FALSE(live.LiveBefore(0, 1));
}

TEST(Liveness, LoopCarriedFlags) {
  // loop: sub; jne loop — at loop entry flags are dead (sub redefines),
  // after sub they are live (consumed by jne).
  FunctionBuilder b("f");
  int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRcx, 10));
  b.Bind(loop);
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  FlagsLiveness live(fn);
  int32_t loop_idx = fn.IndexOfBlock(loop);
  EXPECT_FALSE(live.LiveIn(loop_idx));
  EXPECT_TRUE(live.LiveBefore(loop_idx, 1));
}

TEST(RegHelpers, WritesAndReads) {
  EXPECT_TRUE(InstructionWritesReg(Instruction::Lea(Reg::kR11, MemOperand::Base(Reg::kRdi, 0)),
                                   Reg::kR11));
  EXPECT_FALSE(InstructionWritesReg(Instruction::PushR(Reg::kR11), Reg::kR11));
  EXPECT_TRUE(InstructionReadsReg(Instruction::PushR(Reg::kR11), Reg::kR11));
  EXPECT_TRUE(InstructionWritesReg(Instruction::Movsq(), Reg::kRsi));
}

}  // namespace
}  // namespace krx
