// Assembler, linker, layouts, physmap synonyms and module loader-linker.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/ir/builder.h"
#include "src/kernel/assembler.h"
#include "src/kernel/image.h"
#include "src/kernel/layout.h"
#include "src/kernel/module_loader.h"
#include "src/isa/encoding.h"

namespace krx {
namespace {

Function MakeCallee() {
  FunctionBuilder b("callee");
  b.Emit(Instruction::MovRI(Reg::kRax, 7));
  b.Emit(Instruction::Ret());
  return b.Build();
}

Function MakeCaller(SymbolTable& symbols) {
  FunctionBuilder b("caller");
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Emit(Instruction::CallSym(symbols.Intern("callee")));
  b.Emit(Instruction::AddRI(Reg::kRsp, 8));
  b.Emit(Instruction::Ret());
  return b.Build();
}

TEST(Assembler, FunctionsAre16ByteAligned) {
  TextBlob blob;
  Assembler as;
  ASSERT_TRUE(as.Assemble(MakeCallee(), &blob).ok());
  ASSERT_TRUE(as.Assemble(MakeCallee(), &blob).ok());  // duplicate name is fine pre-link
  ASSERT_EQ(blob.functions.size(), 2u);
  EXPECT_EQ(blob.functions[0].offset % 16, 0u);
  EXPECT_EQ(blob.functions[1].offset % 16, 0u);
  // Padding bytes between functions decode as int3.
  for (uint64_t off = blob.functions[0].offset + blob.functions[0].size;
       off < blob.functions[1].offset; ++off) {
    EXPECT_EQ(blob.bytes[off], kTextPadByte);
  }
}

TEST(Assembler, IntraFunctionBranchesResolve) {
  FunctionBuilder b("f");
  int32_t target = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, target));
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Bind(target);
  b.Emit(Instruction::Ret());
  TextBlob blob;
  Assembler as;
  ASSERT_TRUE(as.Assemble(b.Build(), &blob).ok());
  EXPECT_TRUE(blob.relocs.empty());  // no external references

  // Decode the stream and verify the jcc skips exactly the add.
  uint64_t off = 0;
  std::vector<std::pair<uint64_t, Instruction>> insts;
  while (off < blob.functions[0].size) {
    auto dec = DecodeInstruction(blob.bytes.data(), blob.bytes.size(), off);
    ASSERT_TRUE(dec.ok());
    insts.emplace_back(off, dec->inst);
    off += dec->size;
  }
  ASSERT_EQ(insts.size(), 4u);
  const auto& [jcc_off, jcc] = insts[1];
  const auto& [add_off, add] = insts[2];
  const auto& [ret_off, ret] = insts[3];
  EXPECT_EQ(add.op, Opcode::kAddRI);
  EXPECT_EQ(ret.op, Opcode::kRet);
  uint64_t jcc_end = add_off;  // jcc ends where add begins
  EXPECT_EQ(jcc_end + static_cast<uint64_t>(jcc.imm), ret_off);
}

TEST(Assembler, CallEmitsRel32Reloc) {
  SymbolTable symbols;
  TextBlob blob;
  Assembler as;
  ASSERT_TRUE(as.Assemble(MakeCaller(symbols), &blob).ok());
  ASSERT_EQ(blob.relocs.size(), 1u);
  EXPECT_EQ(blob.relocs[0].kind, RelocKind::kRel32);
  EXPECT_EQ(blob.relocs[0].symbol, symbols.Find("callee"));
}

TEST(Assembler, InstLabelResolvesWithByteOffset) {
  // lea L+2(%rip), %r11 where L labels a later instruction.
  Function fn("f");
  int32_t b0 = fn.AddBlock();
  Instruction lea = Instruction::Lea(Reg::kR11, MemOperand::RipRel(0));
  lea.mem_label = 5;
  lea.mem_label_byte_off = 2;
  Instruction labeled = Instruction::MovRI(Reg::kR11, 0x1102);
  labeled.inst_label = 5;
  fn.block_by_id(b0).insts.push_back(lea);
  fn.block_by_id(b0).insts.push_back(labeled);
  fn.block_by_id(b0).insts.push_back(Instruction::Ret());
  TextBlob blob;
  Assembler as;
  ASSERT_TRUE(as.Assemble(fn, &blob).ok());
  auto dec = DecodeInstruction(blob.bytes.data(), blob.bytes.size(), 0);
  ASSERT_TRUE(dec.ok());
  // lea end + disp must equal (labeled inst offset) + 2.
  uint64_t lea_end = dec->size;
  EXPECT_EQ(lea_end + static_cast<uint64_t>(dec->inst.mem.disp), lea_end + 2);
}

KernelLinkInput MakeLinkInput(SymbolTable& symbols) {
  KernelLinkInput input;
  Assembler as;
  KRX_CHECK(as.Assemble(MakeCallee(), &input.text).ok());
  KRX_CHECK(as.Assemble(MakeCaller(symbols), &input.text).ok());
  DataObject obj;
  obj.name = "table";
  obj.kind = SectionKind::kRodata;
  obj.bytes.assign(16, 0);
  obj.pointer_slots.push_back({0, symbols.Intern("callee")});
  input.data_objects.push_back(obj);
  DataObject rw;
  rw.name = "counter";
  rw.kind = SectionKind::kData;
  rw.bytes.assign(8, 0x11);
  input.data_objects.push_back(rw);
  input.phys_bytes = 8ULL << 20;
  return input;
}

TEST(LinkKernel, VanillaLayoutTextFirst) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kVanilla, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  const PlacedSection* text = (*image)->FindSection(".text");
  const PlacedSection* rodata = (*image)->FindSection(".rodata");
  const PlacedSection* data = (*image)->FindSection(".data");
  ASSERT_TRUE(text && rodata && data);
  EXPECT_EQ(text->vaddr, kImageBase);  // conventional: .text at the image base
  EXPECT_LT(text->vaddr, rodata->vaddr);
  EXPECT_LT(rodata->vaddr, data->vaddr);
  EXPECT_EQ((*image)->krx_edata(), 0u);
}

TEST(LinkKernel, KrxLayoutFlipsImageAndSetsEdata) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  const PlacedSection* text = (*image)->FindSection(".text");
  const PlacedSection* rodata = (*image)->FindSection(".rodata");
  const PlacedSection* guard = (*image)->FindSection(".krx_phantom");
  ASSERT_TRUE(text && rodata && guard);
  // Flipped: data at the image base, .text in the code region above edata.
  EXPECT_EQ(rodata->vaddr, kImageBase);
  EXPECT_GE(text->vaddr, kKrxCodeBase);
  uint64_t edata = (*image)->krx_edata();
  EXPECT_GT(edata, 0u);
  EXPECT_EQ(guard->vaddr, edata);
  EXPECT_EQ(guard->vaddr + guard->mapped_size, kKrxCodeBase);
  // Every data section below edata, all code above.
  EXPECT_LT(rodata->vaddr, edata);
  EXPECT_GT(text->vaddr, edata);
}

TEST(LinkKernel, PointerSlotsGetFunctionAddresses) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  auto table = (*image)->symbols().AddressOf("table");
  auto callee = (*image)->symbols().AddressOf("callee");
  ASSERT_TRUE(table.ok() && callee.ok());
  auto slot = (*image)->Peek64(*table);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, *callee);
}

TEST(LinkKernel, PhysmapSynonymsOfCodeUnmapped) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  const PlacedSection* text = (*image)->FindSection(".text");
  const PlacedSection* data = (*image)->FindSection(".data");
  // Code synonym gone; data synonym still present.
  EXPECT_EQ((*image)->page_table().Lookup((*image)->PhysmapVaddr(text->first_frame)), nullptr);
  EXPECT_NE((*image)->page_table().Lookup((*image)->PhysmapVaddr(data->first_frame)), nullptr);
}

TEST(LinkKernel, VanillaKeepsCodeSynonyms) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kVanilla, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  const PlacedSection* text = (*image)->FindSection(".text");
  // ret2dir-style alias remains readable and writable through the physmap.
  EXPECT_NE((*image)->page_table().Lookup((*image)->PhysmapVaddr(text->first_frame)), nullptr);
}

TEST(LinkKernel, NoWxMappings) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE((*image)->page_table().FindWxViolations().empty());
}

TEST(LinkKernel, UndefinedSymbolFailsLink) {
  SymbolTable symbols;
  KernelLinkInput input;
  Assembler as;
  ASSERT_TRUE(as.Assemble(MakeCaller(symbols), &input.text).ok());  // no callee
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kNotFound);
}

TEST(LinkKernel, DuplicateFunctionRejected) {
  SymbolTable symbols;
  KernelLinkInput input;
  Assembler as;
  ASSERT_TRUE(as.Assemble(MakeCallee(), &input.text).ok());
  ASSERT_TRUE(as.Assemble(MakeCallee(), &input.text).ok());
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kAlreadyExists);
}

TEST(ModuleLoader, LoadBindUnloadZap) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());

  // Module calling the kernel's "callee".
  ModuleObject mod;
  mod.name = "extmod";
  Assembler as;
  FunctionBuilder mb("mod_entry");
  mb.Emit(Instruction::SubRI(Reg::kRsp, 8));
  mb.Emit(Instruction::CallSym((*image)->symbols().Intern("callee")));
  mb.Emit(Instruction::AddRI(Reg::kRax, 1));
  mb.Emit(Instruction::AddRI(Reg::kRsp, 8));
  mb.Emit(Instruction::Ret());
  ASSERT_TRUE(as.Assemble(mb.Build(), &mod.text).ok());
  DataObject md;
  md.name = "mod_data";
  md.kind = SectionKind::kData;
  md.bytes.assign(8, 0x22);
  mod.data_objects.push_back(md);

  ModuleLoader loader(image->get());
  auto handle = loader.Load(mod);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const LoadedModule& lm = loader.module(*handle);
  // Sliced: text in modules_text, data in modules_data.
  EXPECT_GE(lm.text_vaddr, kKrxModulesTextBase);
  EXPECT_GE(lm.data_vaddr, kKrxModulesDataBase);
  EXPECT_LT(lm.data_vaddr, kKrxModulesDataBase + kKrxModulesDataLen);
  // Eager binding resolved the symbol.
  EXPECT_TRUE((*image)->symbols().AddressOf("mod_entry").ok());
  // Module text synonym removed from the physmap.
  EXPECT_EQ((*image)->page_table().Lookup((*image)->PhysmapVaddr(lm.text_first_frame)), nullptr);

  uint64_t text_vaddr = lm.text_vaddr;
  uint64_t frame = lm.text_first_frame;
  ASSERT_TRUE(loader.Unload(*handle).ok());
  // Unmapped, zapped, synonym restored, symbols gone.
  EXPECT_EQ((*image)->page_table().Lookup(text_vaddr), nullptr);
  EXPECT_NE((*image)->page_table().Lookup((*image)->PhysmapVaddr(frame)), nullptr);
  EXPECT_EQ((*image)->phys().Read8(frame << kPageShift), kTextPadByte);
  EXPECT_FALSE((*image)->symbols().AddressOf("mod_entry").ok());
  // Double unload fails cleanly.
  EXPECT_FALSE(loader.Unload(*handle).ok());
}

TEST(ModuleLoader, VanillaInterleavesTextAndData) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kVanilla, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  ModuleObject mod;
  mod.name = "m";
  Assembler as;
  ASSERT_TRUE(as.Assemble([&] {
                FunctionBuilder b("m_entry");
                b.Emit(Instruction::MovRI(Reg::kRax, 3));
                b.Emit(Instruction::Ret());
                return b.Build();
              }(),
                          &mod.text)
                  .ok());
  DataObject md;
  md.name = "m_data";
  md.kind = SectionKind::kData;
  md.bytes.assign(8, 1);
  mod.data_objects.push_back(md);
  ModuleLoader loader(image->get());
  auto handle = loader.Load(mod);
  ASSERT_TRUE(handle.ok());
  const LoadedModule& lm = loader.module(*handle);
  // Same region, back to back (text page then data page).
  EXPECT_GE(lm.text_vaddr, kVanillaModulesBase);
  EXPECT_EQ(lm.data_vaddr, lm.text_vaddr + kPageSize);
}

TEST(ModuleLoader, RegionExhaustionRejected) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  auto too_big = (*image)->AllocModuleText(kKrxModulesTextLen + 1);
  EXPECT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
}

TEST(Relocs, Rel32OverflowDetected) {
  // A rel32 that violates the -mcmodel=kernel ±2GB constraint must fail.
  std::vector<uint8_t> bytes(16, 0);
  SymbolTable symbols;
  int32_t sym = symbols.Intern("far_away");
  symbols.at(sym).defined = true;
  symbols.at(sym).address = 0x100000000ULL;  // 4GB away from a zero-based section
  std::vector<Reloc> relocs = {Reloc{RelocKind::kRel32, 0, 4, sym}};
  Status s = ApplyRelocs(bytes, relocs, 0, symbols);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(Image, XkeyReplenishmentFillsNonZeroKeys) {
  SymbolTable symbols;
  KernelLinkInput input = MakeLinkInput(symbols);
  input.xkeys.assign(32, 0);
  for (int i = 0; i < 4; ++i) {
    int32_t sym = symbols.Intern("xkey$f" + std::to_string(i), SymbolKind::kData);
    input.xkey_symbols.emplace_back(sym, 8 * i);
  }
  auto image = LinkKernel(LayoutKind::kKrx, std::move(input), std::move(symbols));
  ASSERT_TRUE(image.ok());
  Rng rng(99);
  ASSERT_TRUE((*image)->ReplenishXkeys(rng).ok());
  for (int i = 0; i < 4; ++i) {
    auto addr = (*image)->symbols().AddressOf("xkey$f" + std::to_string(i));
    ASSERT_TRUE(addr.ok());
    EXPECT_GE(*addr, (*image)->krx_edata());  // keys live in the code region
    auto key = (*image)->Peek64(*addr);
    ASSERT_TRUE(key.ok());
    EXPECT_NE(*key, 0u);
  }
}

}  // namespace
}  // namespace krx
