// Predecoded-block-cache equivalence and invalidation.
//
// The contract under test (DESIGN.md §9): cached execution is an
// *optimization only* — every guest-visible field of a RunResult must be
// bit-identical to the single-step interpreter, across protection columns,
// step-limit boundaries, and every text-mutation event (host pokes, module
// load/unload, guest self-modification through physmap synonyms).
#include <gtest/gtest.h>

#include "src/fleet/image_key.h"
#include "src/fleet/kernel_cache.h"
#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

RunOptions Cached(uint64_t max_steps = kDefaultMaxSteps) {
  return RunOptions{.max_steps = max_steps, .use_block_cache = true};
}

RunOptions Uncached(uint64_t max_steps = kDefaultMaxSteps) {
  return RunOptions{.max_steps = max_steps, .use_block_cache = false};
}

// Every guest-visible field must match; wall time is the only thing the
// cache is allowed to change.
void ExpectSameResult(const RunResult& cached, const RunResult& uncached,
                      const std::string& context) {
  EXPECT_EQ(cached.reason, uncached.reason) << context;
  EXPECT_EQ(cached.exception, uncached.exception) << context;
  EXPECT_EQ(cached.fault_addr, uncached.fault_addr) << context;
  EXPECT_EQ(cached.rax, uncached.rax) << context;
  EXPECT_EQ(cached.instructions, uncached.instructions) << context;
  EXPECT_EQ(cached.deci_cycles, uncached.deci_cycles) << context;
  EXPECT_TRUE(cached.mix == uncached.mix) << context;
  EXPECT_EQ(cached.krx_violation, uncached.krx_violation) << context;
  EXPECT_EQ(cached.xnr_violation, uncached.xnr_violation) << context;
}

void AddFunction(KernelSource* src, FunctionBuilder& b, const std::string& name) {
  src->functions.push_back(b.Build());
  src->symbols.Intern(name);
}

// smc_store(dst, val): a guest store primitive — the vehicle for
// self-modification through a physmap synonym.
void AddSmcHelpers(KernelSource* src) {
  {
    FunctionBuilder b("smc_store");
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRdi, 0), Reg::kRsi));
    b.Emit(Instruction::Ret());
    AddFunction(src, b, "smc_store");
  }
  {
    FunctionBuilder b("smc_target");
    b.Emit(Instruction::MovRI(Reg::kRax, 42));
    b.Emit(Instruction::Ret());
    AddFunction(src, b, "smc_target");
  }
}

TEST(BlockCacheDifferential, LmbenchOpsIdenticalAcrossEngines) {
  for (const char* config_name : {"vanilla", "sfi-o3"}) {
    ProtectionConfig config;
    LayoutKind layout = LayoutKind::kKrx;
    ASSERT_TRUE(ParseConfigName(config_name, 0x51, &config, &layout));
    auto kernel = CompileKernel(MakeBenchSource(0x51), {config, layout});
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    CpuOptions opts;
    opts.mpx_enabled = config.mpx;
    Cpu cached_cpu(kernel->image.get(), CostModel(), opts);
    Cpu uncached_cpu(kernel->image.get(), CostModel(), opts);
    auto buf = SetUpOpBuffer(*kernel->image, 0x51);
    ASSERT_TRUE(buf.ok());
    for (const char* op : {"sys_read_write", "sys_open_close", "sys_fstat", "sys_file_io_bw"}) {
      RunResult u = uncached_cpu.CallFunction(op, {*buf}, Uncached());
      RunResult c = cached_cpu.CallFunction(op, {*buf}, Cached());
      ASSERT_EQ(u.reason, StopReason::kReturned) << op;
      ExpectSameResult(c, u, std::string(config_name) + "/" + op);
    }
    // The cached engine really ran through the cache.
    const BlockCacheStats& stats = cached_cpu.block_cache().stats();
    EXPECT_GT(stats.decoded_insts, 0u);
    EXPECT_GT(stats.hits, 0u) << "ops share blocks; rerunning them must hit";
    EXPECT_EQ(uncached_cpu.block_cache().stats().decoded_insts, 0u);
  }
}

// The step budget must bite at exactly the same retired-instruction count:
// a block must never be replayed past the limit.
TEST(BlockCacheDifferential, StepLimitSweepIdentical) {
  auto kernel =
      CompileKernel(MakeBenchSource(0x52), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  Cpu cached_cpu(kernel->image.get());
  Cpu uncached_cpu(kernel->image.get());
  auto buf = SetUpOpBuffer(*kernel->image, 0x52);
  ASSERT_TRUE(buf.ok());
  for (uint64_t limit = 1; limit <= 40; ++limit) {
    RunResult u = uncached_cpu.CallFunction("sys_read_write", {*buf}, Uncached(limit));
    RunResult c = cached_cpu.CallFunction("sys_read_write", {*buf}, Cached(limit));
    ExpectSameResult(c, u, "limit=" + std::to_string(limit));
  }
}

TEST(BlockCacheInvalidation, HostPokeTripsImmediately) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  Cpu cached_cpu(&image);
  Cpu uncached_cpu(&image);
  auto buf = image.AllocDataPages(1);
  ASSERT_TRUE(buf.ok());

  auto entry = image.symbols().AddressOf("commit_creds");
  ASSERT_TRUE(entry.ok());
  RunResult warm = cached_cpu.CallFunction(*entry, {1}, Cached());
  ASSERT_EQ(warm.reason, StopReason::kReturned);

  // A byte smashed over the cached entry must change behavior on the very
  // next call (0xCC does not decode in this ISA, so both engines trap).
  uint8_t orig = 0;
  ASSERT_TRUE(image.PeekBytes(*entry, &orig, 1).ok());
  const uint8_t evil = 0xCC;
  ASSERT_TRUE(image.PokeBytes(*entry, &evil, 1).ok());
  RunResult u = uncached_cpu.CallFunction(*entry, {1}, Uncached());
  RunResult c = cached_cpu.CallFunction(*entry, {1}, Cached());
  EXPECT_EQ(c.reason, StopReason::kException);
  EXPECT_NE(c.exception, ExceptionKind::kNone);
  ExpectSameResult(c, u, "poked entry");
  EXPECT_GT(cached_cpu.block_cache().stats().flushes, 0u);

  // Restoring the byte (another poke) invalidates the trapping block in turn.
  ASSERT_TRUE(image.PokeBytes(*entry, &orig, 1).ok());
  RunResult again = cached_cpu.CallFunction(*entry, {1}, Cached());
  EXPECT_EQ(again.reason, StopReason::kReturned);
  EXPECT_EQ(again.rax, warm.rax);
}

TEST(BlockCacheInvalidation, ModuleLoadUnloadInvalidates) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  ModuleLoader loader(&image);
  Cpu cached_cpu(&image);
  Cpu uncached_cpu(&image);

  std::vector<Function> fns;
  {
    FunctionBuilder b("bc_mod_fn");
    b.Emit(Instruction::MovRI(Reg::kRax, 7));
    b.Emit(Instruction::AddRI(Reg::kRax, 4));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    image.symbols().Intern("bc_mod_fn");
  }
  auto mod = CompileModule("bc_mod", fns, {}, image.symbols(), ProtectionConfig::SfiOnly(SfiLevel::kO3));
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  auto handle = loader.Load(*mod);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto entry = image.symbols().AddressOf("bc_mod_fn");
  ASSERT_TRUE(entry.ok());

  RunResult warm = cached_cpu.CallFunction(*entry, {}, Cached());
  ASSERT_EQ(warm.reason, StopReason::kReturned);
  EXPECT_EQ(warm.rax, 11u);

  // Unload zaps and unmaps the module text; a stale predecoded block would
  // happily keep returning 11. Both engines must fault identically instead.
  ASSERT_TRUE(loader.Unload(*handle).ok());
  RunResult u = uncached_cpu.CallFunction(*entry, {}, Uncached());
  RunResult c = cached_cpu.CallFunction(*entry, {}, Cached());
  EXPECT_NE(c.reason, StopReason::kReturned);
  ExpectSameResult(c, u, "unloaded module entry");
}

// Guest self-modification through a physmap synonym (vanilla layout keeps
// the synonyms): the write lands via DataWrite64, which must bump the text
// generation and kill the stale block mid-everything.
TEST(BlockCacheInvalidation, GuestStoreThroughPhysmapSynonym) {
  KernelSource src = MakeBaseSource();
  AddSmcHelpers(&src);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  Cpu cached_cpu(&image);
  Cpu uncached_cpu(&image);

  auto entry = image.symbols().AddressOf("smc_target");
  ASSERT_TRUE(entry.ok());
  const PlacedSection* text = image.FindSection(".text");
  ASSERT_NE(text, nullptr);
  ASSERT_GE(*entry, text->vaddr);
  const uint64_t frame = text->first_frame + ((*entry - text->vaddr) >> kPageShift);
  const uint64_t synonym = image.PhysmapVaddr(frame) + (*entry & (kPageSize - 1));
  ASSERT_TRUE(image.VaddrAliasesCode(synonym));

  RunResult warm = cached_cpu.CallFunction("smc_target", {}, Cached());
  ASSERT_EQ(warm.reason, StopReason::kReturned);
  ASSERT_EQ(warm.rax, 42u);

  auto orig = image.Peek64(*entry);
  ASSERT_TRUE(orig.ok());
  // Guest store of eight undecodable bytes over smc_target's entry, via the
  // writable synonym. No host-side poke is involved.
  RunResult store = cached_cpu.CallFunction("smc_store", {synonym, 0xCCCCCCCCCCCCCCCCULL}, Cached());
  ASSERT_EQ(store.reason, StopReason::kReturned);

  RunResult u = uncached_cpu.CallFunction("smc_target", {}, Uncached());
  RunResult c = cached_cpu.CallFunction("smc_target", {}, Cached());
  EXPECT_EQ(c.reason, StopReason::kException);
  EXPECT_NE(c.exception, ExceptionKind::kNone);
  ExpectSameResult(c, u, "after guest SMC");

  // And the guest can restore the bytes the same way.
  RunResult fix = cached_cpu.CallFunction("smc_store", {synonym, *orig}, Cached());
  ASSERT_EQ(fix.reason, StopReason::kReturned);
  RunResult again = cached_cpu.CallFunction("smc_target", {}, Cached());
  EXPECT_EQ(again.reason, StopReason::kReturned);
  EXPECT_EQ(again.rax, 42u);
}

// A step observer must see every single retired instruction, which forces
// the uncached engine even when the caller asked for the cache.
TEST(BlockCacheObserver, ObserverForcesUncachedExecution) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  Cpu cpu(kernel->image.get());
  uint64_t observed = 0;
  cpu.set_step_observer([&observed](const Cpu&) { ++observed; });
  RunResult r = cpu.CallFunction("commit_creds", {1}, Cached());
  ASSERT_EQ(r.reason, StopReason::kReturned);
  // The final ret (sentinel pop) stops the run before the observer fires —
  // the seed interpreter's historical contract.
  EXPECT_EQ(observed + 1, r.instructions);
  const BlockCacheStats& stats = cpu.block_cache().stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u) << "observer runs must bypass the cache entirely";

  // Dropping the observer re-enables the cache on the same Cpu.
  cpu.set_step_observer(nullptr);
  RunResult r2 = cpu.CallFunction("commit_creds", {1}, Cached());
  ASSERT_EQ(r2.reason, StopReason::kReturned);
  EXPECT_GT(cpu.block_cache().stats().decoded_insts, 0u);
}

TEST(TextGeneration, BumpsOnCodeEventsOnly) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;

  // Data pokes leave the generation alone (a bump per scratch-buffer write
  // would flush block caches constantly for no reason).
  auto buf = image.AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  const uint64_t before = image.text_generation();
  ASSERT_TRUE(image.Poke64(*buf, 0xDEAD).ok());
  EXPECT_EQ(image.text_generation(), before);

  // Code pokes bump.
  auto entry = image.symbols().AddressOf("commit_creds");
  ASSERT_TRUE(entry.ok());
  uint8_t byte = 0;
  ASSERT_TRUE(image.PeekBytes(*entry, &byte, 1).ok());
  ASSERT_TRUE(image.PokeBytes(*entry, &byte, 1).ok());
  EXPECT_GT(image.text_generation(), before);

  // New executable mappings bump (they create fetchable bytes).
  const uint64_t after_poke = image.text_generation();
  ASSERT_TRUE(image.MapUserPages(0x400000, 1).ok());
  EXPECT_GT(image.text_generation(), after_poke);
}

// The sharded kernel cache underpinning the parallel driver and the fleet:
// one compile per typed ImageKey, shared pointers for repeat requests,
// private builds on demand.
TEST(KernelCacheTest, CompilesOncePerKey) {
  KernelCache cache([] { return MakeBaseSource(); });
  const BuildOptions sfi{ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx};
  const BuildOptions mpx{ProtectionConfig::MpxOnly(), LayoutKind::kKrx};
  EXPECT_NE(ImageKey::FromOptions(sfi), ImageKey::FromOptions(mpx));

  auto a = cache.Acquire(sfi, Sharing::kShared);
  auto b = cache.Acquire(sfi, Sharing::kShared);
  auto c = cache.Acquire(mpx, Sharing::kShared);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->get(), b->get()) << "same key must share one kernel";
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(cache.stats().shared_mode.compiles, 2u);
  EXPECT_EQ(cache.stats().shared_mode.hits, 1u);

  auto priv = cache.Acquire(sfi, Sharing::kPrivate);
  ASSERT_TRUE(priv.ok());
  EXPECT_NE(priv->get(), a->get()) << "private builds are never shared";
  EXPECT_EQ(cache.stats().private_mode.compiles, 1u);

  // Seed changes the key (diversified columns must not collide); the debug
  // formatter is the only surviving string form and must track the key.
  BuildOptions reseeded = sfi;
  reseeded.seed = 0x1234;
  EXPECT_NE(ImageKey::FromOptions(sfi), ImageKey::FromOptions(reseeded));
  EXPECT_NE(ImageKey::FromOptions(sfi).Hash(), ImageKey::FromOptions(reseeded).Hash());
  EXPECT_NE(ImageKey::FromOptions(sfi).DebugString(),
            ImageKey::FromOptions(reseeded).DebugString());
}

}  // namespace
}  // namespace krx
