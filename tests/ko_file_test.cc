// On-disk .ko format: serialization round trips, malformed-image rejection,
// and the full distribution flow (compile once, ship bytes, load into a
// different kernel whose symbol table the image has never seen).
#include <gtest/gtest.h>

#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/kernel/ko_file.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"

namespace krx {
namespace {

// Compiles a small protected module against its own private symbol table
// (the "vendor build machine").
struct VendorModule {
  std::vector<uint8_t> ko;
};

VendorModule BuildVendorKo(const ProtectionConfig& config) {
  SymbolTable vendor_symbols;
  std::vector<Function> fns;
  {
    FunctionBuilder b("vend_helper");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
    b.Emit(Instruction::AddRI(Reg::kRax, 5));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    vendor_symbols.Intern("vend_helper");
  }
  {
    FunctionBuilder b("vend_entry");
    b.Emit(Instruction::SubRI(Reg::kRsp, 8));
    b.Emit(Instruction::CallSym(vendor_symbols.Intern("vend_helper")));
    // Calls a *kernel* export it has never seen defined:
    b.Emit(Instruction::MovRR(Reg::kRdi, Reg::kRax));
    b.Emit(Instruction::CallSym(vendor_symbols.Intern("mov_ret_helper")));
    b.Emit(Instruction::AddRI(Reg::kRsp, 8));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    vendor_symbols.Intern("vend_entry");
  }
  DataObject obj;
  obj.name = "vend_config";
  obj.kind = SectionKind::kData;
  obj.bytes.assign(16, 0x42);
  obj.pointer_slots.push_back({8, vendor_symbols.Intern("vend_entry"), 0});
  auto mod = CompileModule("vendmod", std::move(fns), {obj}, vendor_symbols, config);
  KRX_CHECK(mod.ok());
  auto ko = SerializeModule(*mod, vendor_symbols);
  KRX_CHECK(ko.ok());
  return VendorModule{std::move(*ko)};
}

TEST(KoFile, RoundTripPreservesEverything) {
  VendorModule vendor = BuildVendorKo(ProtectionConfig::Full(false, RaScheme::kEncrypt, 3));
  SymbolTable target;
  auto mod = ParseModule(vendor.ko, target);
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  EXPECT_EQ(mod->name, "vendmod");
  EXPECT_EQ(mod->text.functions.size(), 2u);
  EXPECT_EQ(mod->xkey_bytes, 16u);  // two functions under encryption
  EXPECT_EQ(mod->text_symbol_offsets.size(), 2u);
  EXPECT_EQ(mod->data_objects.size(), 1u);
  EXPECT_EQ(mod->data_objects[0].pointer_slots.size(), 1u);
  EXPECT_FALSE(mod->text.relocs.empty());
  // Symbol names were interned into the *target* namespace.
  EXPECT_GE(target.Find("mov_ret_helper"), 0);
  EXPECT_GE(target.Find("vend_entry"), 0);
}

TEST(KoFile, DistributionFlowEndToEnd) {
  // Vendor ships bytes; a kR^X kernel that has never seen the vendor's
  // symbol table loads and runs them.
  VendorModule vendor = BuildVendorKo(ProtectionConfig::Full(false, RaScheme::kEncrypt, 3));
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 4), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  auto mod = ParseModule(vendor.ko, kernel->image->symbols());
  ASSERT_TRUE(mod.ok());
  ModuleLoader loader(kernel->image.get());
  auto handle = loader.Load(*mod);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  Cpu cpu(kernel->image.get());
  auto buf = kernel->image->AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(kernel->image->Poke64(*buf + 8, 100).ok());
  RunResult r = cpu.CallFunction("vend_entry", {*buf});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  // vend_helper: [buf+8] + 5 = 105; mov_ret_helper echoes it.
  EXPECT_EQ(r.rax, 105u);
  // The module's data pointer slot got the loaded entry address.
  auto cfg = kernel->image->symbols().AddressOf("vend_config");
  auto entry = kernel->image->symbols().AddressOf("vend_entry");
  ASSERT_TRUE(cfg.ok() && entry.ok());
  auto slot = kernel->image->Peek64(*cfg + 8);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, *entry);
}

TEST(KoFile, RejectsBadMagic) {
  VendorModule vendor = BuildVendorKo(ProtectionConfig::Vanilla());
  vendor.ko[0] ^= 0xFF;
  SymbolTable target;
  auto mod = ParseModule(vendor.ko, target);
  EXPECT_FALSE(mod.ok());
  EXPECT_EQ(mod.status().code(), StatusCode::kInvalidArgument);
}

TEST(KoFile, RejectsTruncation) {
  VendorModule vendor = BuildVendorKo(ProtectionConfig::Vanilla());
  SymbolTable target;
  for (size_t cut : {size_t{4}, vendor.ko.size() / 2, vendor.ko.size() - 3}) {
    std::vector<uint8_t> truncated(vendor.ko.begin(),
                                   vendor.ko.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ParseModule(truncated, target).ok()) << "cut=" << cut;
  }
}

TEST(KoFile, RejectsTrailingGarbage) {
  VendorModule vendor = BuildVendorKo(ProtectionConfig::Vanilla());
  vendor.ko.push_back(0);
  SymbolTable target;
  EXPECT_FALSE(ParseModule(vendor.ko, target).ok());
}

TEST(KoFile, RejectsOutOfRangeRecords) {
  VendorModule vendor = BuildVendorKo(ProtectionConfig::Vanilla());
  SymbolTable scratch;
  auto mod = ParseModule(vendor.ko, scratch);
  ASSERT_TRUE(mod.ok());
  // Corrupt a function record so it points past .text, re-serialize, parse.
  mod->text.functions[0].offset = mod->text.bytes.size();
  mod->text.functions[0].size = 64;
  auto bad = SerializeModule(*mod, scratch);
  ASSERT_TRUE(bad.ok());
  SymbolTable target;
  auto parsed = ParseModule(*bad, target);
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace krx
