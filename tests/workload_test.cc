// Workload substrate: corpus structure, op generator determinism, the
// LMBench/Phoronix row tables, and cross-variant semantic equivalence as a
// property sweep over randomized op profiles.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/phoronix.h"

namespace krx {
namespace {

TEST(Corpus, ExportsTheAttackContract) {
  KernelSource src = MakeBaseSource();
  for (const char* sym : {"commit_creds", "debugfs_leak_read", "sys_deep_call"}) {
    EXPECT_GE(src.symbols.Find(sym), 0) << sym;
  }
  bool has_cred = false, has_table = false;
  for (const DataObject& obj : src.data_objects) {
    has_cred |= obj.name == "current_cred";
    if (obj.name == "sys_call_table") {
      has_table = true;
      ASSERT_FALSE(obj.pointer_slots.empty());
      // Slot 0 is commit_creds (the attack contract).
      EXPECT_EQ(obj.pointer_slots[0].offset, 0u);
      EXPECT_EQ(obj.pointer_slots[0].symbol, src.symbols.Find("commit_creds"));
    }
  }
  EXPECT_TRUE(has_cred);
  EXPECT_TRUE(has_table);
}

TEST(Corpus, DeterministicForSeed) {
  KernelSource a = MakeBaseSource();
  KernelSource b = MakeBaseSource();
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].ToString(), b.functions[i].ToString());
  }
}

TEST(LmbenchTable, TwentyThreeRowsElevenColumns) {
  const auto& rows = LmbenchRows();
  EXPECT_EQ(rows.size(), 23u);
  size_t bandwidth = 0;
  for (const auto& row : rows) {
    if (row.bandwidth) {
      ++bandwidth;
    }
  }
  EXPECT_EQ(bandwidth, 5u);  // Table 1's bandwidth section
  EXPECT_EQ(static_cast<int>(kNumTable1Columns), 12);  // 11 paper columns + SFI(-O4)
}

TEST(PhoronixTable, ElevenRowsSixColumns) {
  const auto& rows = PhoronixRows();
  EXPECT_EQ(rows.size(), 11u);
  EXPECT_EQ(static_cast<int>(kNumTable2Columns), 6);
  for (const auto& row : rows) {
    EXPECT_GT(row.kernel_fraction, 0.0);
    EXPECT_LE(row.kernel_fraction, 0.83 + 1e-9);  // PostMark is the max
    EXPECT_FALSE(row.ops.empty());
  }
}

TEST(Harness, ColumnsMatchTable1Names) {
  auto cols = Table1Columns(1);
  ASSERT_EQ(cols.size(), static_cast<size_t>(kNumTable1Columns));
  for (size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(cols[i].name, kTable1ColumnNames[i]);
  }
}

TEST(OpBuffer, DeterministicContents) {
  KernelSource src = MakeBaseSource();
  auto a = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  auto b = CompileKernel(src, {ProtectionConfig::Full(false, RaScheme::kEncrypt, 3), LayoutKind::kKrx});
  ASSERT_TRUE(a.ok() && b.ok());
  auto buf_a = SetUpOpBuffer(*(*a).image, 42);
  auto buf_b = SetUpOpBuffer(*(*b).image, 42);
  ASSERT_TRUE(buf_a.ok() && buf_b.ok());
  for (uint64_t off = 0; off < 256; off += 8) {
    auto va = (*a).image->Peek64(*buf_a + off);
    auto vb = (*b).image->Peek64(*buf_b + off);
    ASSERT_TRUE(va.ok() && vb.ok());
    EXPECT_EQ(*va, *vb);
  }
}

// Property sweep: randomized op profiles must compute identical results on
// the vanilla build and under full protection (both RA schemes), while the
// protected build never fires a spurious violation.
class RandomOpEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomOpEquivalence, ProtectedVariantsMatchVanilla) {
  Rng rng(GetParam());
  KernelSource src = MakeBaseSource();
  std::vector<std::string> ops;
  for (int i = 0; i < 4; ++i) {
    OpProfile p;
    p.name = "rand" + std::to_string(GetParam()) + "_" + std::to_string(i);
    p.loop_iters = 1 + static_cast<int>(rng.NextBelow(6));
    p.coalescible_reads = static_cast<int>(rng.NextBelow(10));
    p.chased_reads = static_cast<int>(rng.NextBelow(8));
    p.indexed_reads = static_cast<int>(rng.NextBelow(3));
    p.flagful_reads = static_cast<int>(rng.NextBelow(3));
    p.writes = static_cast<int>(rng.NextBelow(4));
    p.alu = static_cast<int>(rng.NextBelow(8));
    p.rsp_reads = static_cast<int>(rng.NextBelow(3));
    p.calls = static_cast<int>(rng.NextBelow(3));
    p.leaf_depth = p.calls > 0 ? 1 + static_cast<int>(rng.NextBelow(3)) : 0;
    p.rep_movs_qwords = rng.NextBool(0.3) ? 32 : 0;
    p.rep_stos_qwords = rng.NextBool(0.3) ? 16 : 0;
    p.tail_call_leaf = p.leaf_depth > 0 && rng.NextBool(0.2);
    ops.push_back("sys_" + EmitKernelOp(&src, p).substr(4));
  }

  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(vanilla.ok());
  Cpu vcpu(vanilla->image.get());
  auto vbuf = SetUpOpBuffer(*vanilla->image, GetParam());
  ASSERT_TRUE(vbuf.ok());

  for (RaScheme scheme : {RaScheme::kEncrypt, RaScheme::kDecoy}) {
    auto prot = CompileKernel(src, {ProtectionConfig::Full(false, scheme, GetParam()), LayoutKind::kKrx});
    ASSERT_TRUE(prot.ok());
    Cpu pcpu(prot->image.get());
    auto pbuf = SetUpOpBuffer(*prot->image, GetParam());
    ASSERT_TRUE(pbuf.ok());
    for (const std::string& op : ops) {
      auto vm = MeasureOp(vcpu, *vbuf, op);
      auto pm = MeasureOp(pcpu, *pbuf, op);
      ASSERT_TRUE(vm.ok()) << op << ": " << vm.status().ToString();
      ASSERT_TRUE(pm.ok()) << op << ": " << pm.status().ToString();
      EXPECT_EQ(vm->rax, pm->rax) << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace krx
