// Binary-level verifier (src/verify/): the config matrix verifies clean,
// vanilla demonstrably fails R^X, exemptions are honored, and single-byte
// image corruptions are pinned to exactly the right rule — the soundness
// half of an SFI-style verifier's contract.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/liveness.h"
#include "src/isa/encoding.h"
#include "src/kernel/layout.h"
#include "src/plugin/pipeline.h"
#include "src/verify/confinement.h"
#include "src/verify/decoded_function.h"
#include "src/verify/verifier.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

constexpr uint64_t kSeed = 0xD15A;

CompiledKernel Build(const ProtectionConfig& config, LayoutKind layout) {
  auto kernel = CompileKernel(MakeBenchSource(kSeed), {config, layout});
  KRX_CHECK_OK(kernel.status());
  return std::move(*kernel);
}

// All diagnostics in `report` carry `rule` (and there is at least one).
void ExpectOnlyRule(const VerifyReport& report, RuleId rule) {
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Violates(rule)) << report.Summary(4);
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_EQ(static_cast<int>(d.rule), static_cast<int>(rule)) << d.ToString();
  }
}

// Overwrites the instruction at `di` in place with `repl`. Encodings are
// operand-value independent in size, so in-place rewrites always fit.
void Rewrite(KernelImage& image, const DecodedInst& di, const Instruction& repl) {
  std::vector<uint8_t> bytes;
  EncodeInstruction(repl, bytes);
  ASSERT_EQ(bytes.size(), di.size);
  KRX_CHECK_OK(image.PokeBytes(di.address, bytes.data(), bytes.size()));
}

// Index of a range-check `cmp base, imm` + `ja` pair in `fn`, or -1. A
// range-check immediate sits within one guard-size below edata — no
// workload compare comes near that band.
int64_t FindRangeCheckCmp(const DecodedFunction& fn, uint64_t edata) {
  for (size_t i = 0; i + 1 < fn.insts.size(); ++i) {
    const Instruction& inst = fn.insts[i].inst;
    const Instruction& next = fn.insts[i + 1].inst;
    if (inst.op == Opcode::kCmpRI && static_cast<uint64_t>(inst.imm) <= edata &&
        static_cast<uint64_t>(inst.imm) >= edata - 4096 && next.op == Opcode::kJcc &&
        next.cond == Cond::kA) {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

// Some function in `image` containing a range check (which function gets
// one depends on the corpus RNG, so scan instead of hardcoding a name).
struct RangeCheckSite {
  DecodedFunction fn;
  size_t index = 0;
};

bool FindRangeCheckSite(const KernelImage& image, RangeCheckSite* out) {
  const SymbolTable& symbols = image.symbols();
  for (int32_t i = 0; i < static_cast<int32_t>(symbols.size()); ++i) {
    const Symbol& sym = symbols.at(i);
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0 ||
        sym.name == kKrxHandlerName) {
      continue;
    }
    auto fn = DecodeFunction(image, sym.name, sym.address, sym.size);
    if (!fn.ok()) {
      continue;
    }
    int64_t idx = FindRangeCheckCmp(*fn, image.krx_edata());
    if (idx >= 0) {
      out->fn = std::move(*fn);
      out->index = static_cast<size_t>(idx);
      return true;
    }
  }
  return false;
}

// Decoded view of a defined function symbol.
DecodedFunction Decode(const KernelImage& image, const std::string& name) {
  int32_t idx = image.symbols().Find(name);
  KRX_CHECK(idx >= 0 && image.symbols().at(idx).defined);
  const Symbol& sym = image.symbols().at(idx);
  auto fn = DecodeFunction(image, sym.name, sym.address, sym.size);
  KRX_CHECK_OK(fn.status());
  return std::move(*fn);
}

// Real entry of a (possibly diversified) function: follow the pinned entry
// trampoline and any connector jmps to the first non-jmp instruction.
int64_t EntryIndex(const DecodedFunction& fn) {
  int64_t idx = 0;
  for (int hops = 0; hops < 16; ++hops) {
    const DecodedInst& di = fn.insts[static_cast<size_t>(idx)];
    if (di.inst.op != Opcode::kJmpRel || !fn.Contains(di.BranchTarget())) {
      return idx;
    }
    idx = fn.InstIndexAt(di.BranchTarget());
    if (idx < 0) {
      return -1;
    }
  }
  return idx;
}

TEST(VerifyMatrix, VanillaFailsRxByConstruction) {
  CompiledKernel kernel = Build(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  VerifyOptions opts;    // nothing derivable from a vanilla config...
  opts.check_rx = true;  // ...so force the R^X rules, as the CLI does
  VerifyReport report = VerifyImage(*kernel.image, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Violates(RuleId::kRxLayout));
  EXPECT_TRUE(report.Violates(RuleId::kRxPhysmap));
  EXPECT_TRUE(report.Violates(RuleId::kRxRead));
  EXPECT_GT(report.counters.reads_seen, 0u);
}

TEST(VerifyMatrix, EveryProtectedConfigVerifies) {
  for (const Column& col : Table1Columns(kSeed)) {
    CompiledKernel kernel = Build(col.config, col.layout);
    VerifyReport report = VerifyImage(*kernel.image, VerifyOptions::ForConfig(col.config));
    EXPECT_TRUE(report.ok()) << col.name << ":\n" << report.Summary(4);
    EXPECT_GT(report.counters.functions_checked, 0u) << col.name;
  }
}

TEST(VerifyMatrix, SpecHardenedConfigsVerify) {
  for (SpecMitigation m : {SpecMitigation::kBarrier, SpecMitigation::kMask}) {
    ProtectionConfig config = ProtectionConfig::SpecHardened(m);
    CompiledKernel kernel = Build(config, LayoutKind::kKrx);
    VerifyReport report = VerifyImage(*kernel.image, VerifyOptions::ForConfig(config));
    EXPECT_TRUE(report.ok()) << report.Summary(4);
    EXPECT_GT(report.counters.range_checks_seen, 0u);
  }
}

TEST(VerifyMatrix, UnfencedChecksAreCaughtUnderBarrierRule) {
  // An sfi-o3 build proves confinement but emits no lfences; verifying it
  // with the barrier mitigation claimed must flag every check as unfenced.
  CompiledKernel kernel = Build(ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());
  opts.spec = SpecMitigation::kBarrier;
  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kSpecBarrier);
}

TEST(VerifyMatrix, SurvivingChecksAreCaughtUnderMaskRule) {
  // Under spec-mask no conditional range check may survive at all — the same
  // sfi-o3 image must be rejected with the mask rule when verified as such.
  CompiledKernel kernel = Build(ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());
  opts.spec = SpecMitigation::kMask;
  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kSpecMask);
}

TEST(VerifyMatrix, ExemptFunctionsAreSkippedButStayDangerous) {
  // Pick a function the O3 pass actually instrumented...
  CompiledKernel baseline = Build(ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx);
  RangeCheckSite site;
  ASSERT_TRUE(FindRangeCheckSite(*baseline.image, &site));

  // ...and rebuild with it exempted, as ftrace/KProbes readers would be.
  ProtectionConfig config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  config.exempt_functions = {site.fn.name};
  CompiledKernel kernel = Build(config, LayoutKind::kKrx);

  // With the exemption the image verifies (the verifier skips it too)...
  VerifyOptions opts = VerifyOptions::ForConfig(config);
  VerifyReport report = VerifyImage(*kernel.image, opts);
  EXPECT_TRUE(report.ok()) << report.Summary(4);
  EXPECT_GE(report.counters.functions_exempt, 2u);  // exempt fn + krx_handler

  // ...but dropping the exemption exposes its uninstrumented reads: the
  // verifier, not the pass, is what notices.
  opts.exempt_functions.clear();
  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRxRead);
}

TEST(VerifyMutation, DroppedCmpIsCaught) {
  CompiledKernel kernel = Build(ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());

  RangeCheckSite site;
  ASSERT_TRUE(FindRangeCheckSite(*kernel.image, &site));
  // Neutralize the check: compare a register the read never goes through.
  Instruction cmp = site.fn.insts[site.index].inst;
  cmp.r1 = cmp.r1 == Reg::kRax ? Reg::kRbx : Reg::kRax;
  Rewrite(*kernel.image, site.fn.insts[site.index], cmp);

  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRxRead);
}

TEST(VerifyMutation, DroppedCmpIsCaughtAtO4) {
  // The O4 image carries far fewer checks, every one justifying whole
  // families of elided reads — neutralizing the first one found must break
  // the interval-domain proof.
  CompiledKernel kernel = Build(ProtectionConfig::SfiOnly(SfiLevel::kO4), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());

  RangeCheckSite site;
  ASSERT_TRUE(FindRangeCheckSite(*kernel.image, &site));
  Instruction cmp = site.fn.insts[site.index].inst;
  cmp.r1 = cmp.r1 == Reg::kRax ? Reg::kRbx : Reg::kRax;
  Rewrite(*kernel.image, site.fn.insts[site.index], cmp);

  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRxRead);
}

TEST(VerifyMutation, EveryO4CheckIsLoadBearing) {
  // O4's contract: a check that survives elision is non-redundant. Strip
  // each surviving check (one per function, register-swap neutralization),
  // verify, and restore — every single mutation must be rejected.
  CompiledKernel kernel = Build(ProtectionConfig::SfiOnly(SfiLevel::kO4), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());

  const SymbolTable& symbols = kernel.image->symbols();
  int mutations = 0;
  for (int32_t s = 0; s < static_cast<int32_t>(symbols.size()); ++s) {
    const Symbol& sym = symbols.at(s);
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0 ||
        sym.name == kKrxHandlerName) {
      continue;
    }
    auto fn = DecodeFunction(*kernel.image, sym.name, sym.address, sym.size);
    if (!fn.ok()) {
      continue;
    }
    int64_t idx = FindRangeCheckCmp(*fn, kernel.image->krx_edata());
    if (idx < 0) {
      continue;
    }
    const DecodedInst& di = fn->insts[static_cast<size_t>(idx)];
    Instruction broken = di.inst;
    broken.r1 = broken.r1 == Reg::kRax ? Reg::kRbx : Reg::kRax;
    Rewrite(*kernel.image, di, broken);
    VerifyReport report = VerifyImage(*kernel.image, opts);
    EXPECT_FALSE(report.ok()) << sym.name << ": stripped check at index " << idx
                              << " was not load-bearing";
    EXPECT_TRUE(report.Violates(RuleId::kRxRead)) << sym.name;
    Rewrite(*kernel.image, di, di.inst);  // restore the original bytes
    ++mutations;
  }
  ASSERT_GT(mutations, 4);  // the corpus has many instrumented functions
  // Restoration left the image sound.
  EXPECT_TRUE(VerifyImage(*kernel.image, opts).ok());
}

TEST(VerifyMutation, ClobberedDominatingBaseIsCaughtAtO4) {
  // Find a surviving check whose base register justifies a *later* read
  // (an O4 elision), with a rewritable instruction in between. Clobbering
  // the base there (mov $above-edata, %base) kills the interval fact the
  // elided read depends on; the verifier must notice.
  CompiledKernel kernel = Build(ProtectionConfig::SfiOnly(SfiLevel::kO4), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());
  const uint64_t edata = kernel.image->krx_edata();

  const SymbolTable& symbols = kernel.image->symbols();
  bool mutated = false;
  for (int32_t s = 0; s < static_cast<int32_t>(symbols.size()) && !mutated; ++s) {
    const Symbol& sym = symbols.at(s);
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0 ||
        sym.name == kKrxHandlerName) {
      continue;
    }
    auto fn = DecodeFunction(*kernel.image, sym.name, sym.address, sym.size);
    if (!fn.ok()) {
      continue;
    }
    for (size_t i = 0; i + 1 < fn->insts.size() && !mutated; ++i) {
      const Instruction& cmp = fn->insts[i].inst;
      const Instruction& ja = fn->insts[i + 1].inst;
      if (cmp.op != Opcode::kCmpRI || static_cast<uint64_t>(cmp.imm) > edata ||
          static_cast<uint64_t>(cmp.imm) < edata - 4096 || ja.op != Opcode::kJcc ||
          ja.cond != Cond::kA) {
        continue;
      }
      const Reg base = cmp.r1;
      // Scan the straight-line tail: stop at anything that re-derives or
      // re-checks the base (positive adds keep coverage and may pass). The
      // clobber vehicle is the first load *through* the base into some
      // other register — redirecting its destination onto the base itself
      // replaces the checked pointer with unchecked memory content. The
      // victim is any later non-indexed read through the base (indexed
      // reads carry their own lea-form check).
      int64_t clobber = -1;
      for (size_t j = i + 2; j < fn->insts.size(); ++j) {
        const DecodedInst& dj = fn->insts[j];
        const Instruction& inst = dj.inst;
        const bool derives_base = inst.op == Opcode::kAddRI && inst.r1 == base && inst.imm >= 0;
        if (!dj.reachable || inst.IsCall() || inst.IsTerminator() ||
            (InstructionWritesReg(inst, base) && !derives_base)) {
          break;
        }
        if (inst.op == Opcode::kCmpRI && inst.r1 == base) {
          break;  // a fresh check would re-cover the base
        }
        const bool read_via_base = inst.ReadsMemory() && inst.mem.base == base &&
                                   inst.mem.index == Reg::kNone && !inst.mem.rip_relative;
        if (clobber >= 0 && read_via_base) {
          Instruction evil = fn->insts[static_cast<size_t>(clobber)].inst;
          evil.r1 = base;  // load [base+d] -> base: the interval fact dies
          Rewrite(*kernel.image, fn->insts[static_cast<size_t>(clobber)], evil);
          mutated = true;
          break;
        }
        if (clobber < 0 && read_via_base && inst.r1 != base &&
            (inst.op == Opcode::kLoad || inst.op == Opcode::kAddRM)) {
          clobber = static_cast<int64_t>(j);
        }
      }
    }
  }
  ASSERT_TRUE(mutated) << "no check/clobber-point/read triple found in the O4 image";
  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRxRead);
}

TEST(VerifyMutation, RetargetedJaIsCaught) {
  CompiledKernel kernel = Build(ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());

  RangeCheckSite site;
  ASSERT_TRUE(FindRangeCheckSite(*kernel.image, &site));
  // Point the ja at its own fallthrough: the check no longer has a
  // violation edge, so it proves nothing about the read it guarded.
  Instruction ja = site.fn.insts[site.index + 1].inst;
  ja.imm = 0;
  Rewrite(*kernel.image, site.fn.insts[site.index + 1], ja);

  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRxRead);
}

TEST(VerifyMutation, ZeroedXkeyIsCaught) {
  CompiledKernel kernel =
      Build(ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, kSeed), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());

  int32_t sym = kernel.image->symbols().Find("xkey$util_1");
  ASSERT_GE(sym, 0);
  KRX_CHECK_OK(kernel.image->Poke64(kernel.image->symbols().at(sym).address, 0));

  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRxXkeys);
}

TEST(VerifyMutation, BrokenEncryptPrologueIsCaught) {
  CompiledKernel kernel =
      Build(ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, kSeed), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  ASSERT_TRUE(VerifyImage(*kernel.image, opts).ok());

  // Entry trampoline -> xkey load -> `xor %r11, (%rsp)`. Shift the xor one
  // slot up the stack: the return address is no longer encrypted.
  DecodedFunction fn = Decode(*kernel.image, "util_1");
  int64_t entry = EntryIndex(fn);
  ASSERT_GE(entry, 0);
  ASSERT_EQ(fn.insts[static_cast<size_t>(entry)].inst.op, Opcode::kLoad);
  const DecodedInst& xor_inst = fn.insts[static_cast<size_t>(entry) + 1];
  ASSERT_EQ(xor_inst.inst.op, Opcode::kXorMR);
  Instruction broken = xor_inst.inst;
  broken.mem = MemOperand::Base(Reg::kRsp, 8);
  Rewrite(*kernel.image, xor_inst, broken);

  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRaXPrologue);
}

TEST(VerifyMutation, DeadTripwireIsCaught) {
  CompiledKernel kernel =
      Build(ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, kSeed), LayoutKind::kKrx);
  VerifyOptions opts = VerifyOptions::ForConfig(kernel.config);
  VerifyReport base = VerifyImage(*kernel.image, opts);
  ASSERT_TRUE(base.ok()) << base.Summary(4);
  ASSERT_GT(base.counters.tripwires_verified, 0u);

  // Find a tripwire lea (rip-relative into %r11 right before a call) and
  // bend it to point at the call itself — a decoy that would execute real
  // code instead of trapping.
  const SymbolTable& symbols = kernel.image->symbols();
  bool mutated = false;
  for (int32_t s = 0; s < static_cast<int32_t>(symbols.size()) && !mutated; ++s) {
    const Symbol& sym = symbols.at(s);
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0 ||
        sym.name == kKrxHandlerName) {
      continue;
    }
    auto fn = DecodeFunction(*kernel.image, sym.name, sym.address, sym.size);
    KRX_CHECK_OK(fn.status());
    for (size_t i = 0; i + 1 < fn->insts.size(); ++i) {
      const DecodedInst& di = fn->insts[i];
      if (di.reachable && di.inst.op == Opcode::kLea && di.inst.r1 == Reg::kR11 &&
          di.inst.mem.rip_relative && fn->insts[i + 1].inst.IsCall()) {
        Instruction bent = di.inst;
        bent.mem.disp = 0;  // EA = end of the lea = the call instruction
        Rewrite(*kernel.image, di, bent);
        mutated = true;
        break;
      }
    }
  }
  ASSERT_TRUE(mutated);
  ExpectOnlyRule(VerifyImage(*kernel.image, opts), RuleId::kRaDTripwire);
}

// ---- The `sub r, imm` congruence of the interval domain. ----

// Probe with one widened dominating check and a downward base derivation:
//
//   cmp  $(edata - kProbeCheckDisp), %rdi ; ja viol
//   sub  $kProbeSubImm, %rdi
//   mov  d(%rdi), %rax            (one load per entry in `read_disps`)
//   ret
// viol: callq krx_handler ; hlt
//
// The instrumentation passes never elide a check across a subtraction, so
// the probe is compiled exempt — modelling a hand-written cloned reader —
// and the confinement checker runs on its final bytes directly.
constexpr int64_t kProbeCheckDisp = 256;
constexpr int64_t kProbeSubImm = 64;

CompiledKernel BuildSubProbe(const std::vector<int64_t>& read_disps) {
  KernelSource src = MakeBaseSource();
  const int32_t handler = src.symbols.Intern(kKrxHandlerName);
  FunctionBuilder b("sub_probe");
  const int32_t viol = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRdi,
                            ComputeEdata(kDefaultPhantomGuardSize) - kProbeCheckDisp));
  b.Emit(Instruction::JccBlock(Cond::kA, viol));
  b.Emit(Instruction::SubRI(Reg::kRdi, kProbeSubImm));
  for (int64_t d : read_disps) {
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, d)));
  }
  b.Emit(Instruction::Ret());
  b.Bind(viol);
  b.Emit(Instruction::CallSym(handler));
  b.Emit(Instruction::Hlt());
  src.functions.push_back(b.Build());
  src.symbols.Intern("sub_probe");

  ProtectionConfig config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  config.exempt_functions = {"sub_probe"};
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  KRX_CHECK_OK(kernel.status());
  return std::move(*kernel);
}

VerifyReport CheckProbeConfinement(const CompiledKernel& kernel) {
  DecodedFunction fn = Decode(*kernel.image, "sub_probe");
  ConfinementParams params;
  params.edata = kernel.image->krx_edata();
  auto handler = kernel.image->symbols().AddressOf(kKrxHandlerName);
  KRX_CHECK_OK(handler.status());
  params.handler_address = *handler;
  params.guard_size = kDefaultPhantomGuardSize;
  VerifyReport report;
  CheckReadConfinement(fn, params, &report);
  return report;
}

TEST(VerifyCongruence, SubShiftsTheProvenWindowUp) {
  // ja-not-taken proves cover[rdi] = [0, 256]; `sub $64, %rdi` re-associates
  // a read d(%rdi) to the checked base at displacement d - 64, so the window
  // becomes [64, 320]. Both edges must be justified.
  CompiledKernel kernel = BuildSubProbe({kProbeSubImm, kProbeCheckDisp + kProbeSubImm});
  EXPECT_EQ(static_cast<uint64_t>(ComputeEdata(kDefaultPhantomGuardSize)),
            kernel.image->krx_edata());
  VerifyReport report = CheckProbeConfinement(kernel);
  EXPECT_TRUE(report.ok()) << report.Summary(4);
  EXPECT_EQ(report.counters.reads_seen, 2u);
  EXPECT_EQ(report.counters.justified_reads, 2u);
  EXPECT_EQ(report.counters.range_checks_seen, 1u);
}

TEST(VerifyCongruence, SubWindowRejectsReadsPastTheUpperEdge) {
  // d - 64 = 264 > 256: outside what the dominating check proved.
  CompiledKernel kernel = BuildSubProbe({kProbeCheckDisp + kProbeSubImm + 8});
  ExpectOnlyRule(CheckProbeConfinement(kernel), RuleId::kRxRead);
}

TEST(VerifyCongruence, SubWindowKeepsTheNoWrapLowerEdge) {
  // A displacement below the subtracted amount could wrap: %rdi <= edata -
  // 256 proves nothing about %rdi - 64 when %rdi <u 64. A scalar
  // upper-bound-only domain would have accepted this read; the window's
  // lower edge must reject it.
  CompiledKernel kernel = BuildSubProbe({0});
  ExpectOnlyRule(CheckProbeConfinement(kernel), RuleId::kRxRead);
}

TEST(VerifyHook, PostLinkToggleGovernsCompile) {
  // The suite runs with KRX_POST_LINK_VERIFY=1; the explicit setter
  // overrides in both directions and the hook accepts a sound build.
  SetPostLinkVerify(true);
  EXPECT_TRUE(PostLinkVerifyEnabled());
  auto kernel = CompileKernel(MakeBenchSource(kSeed), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
  SetPostLinkVerify(false);
  EXPECT_FALSE(PostLinkVerifyEnabled());
  SetPostLinkVerify(true);
}

TEST(VerifyReportFormat, DiagnosticCarriesRuleFunctionAddressSnippet) {
  CompiledKernel kernel = Build(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  VerifyOptions opts;
  opts.check_rx = true;
  VerifyReport report = VerifyImage(*kernel.image, opts);
  ASSERT_TRUE(report.Violates(RuleId::kRxRead));
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule != RuleId::kRxRead) {
      continue;
    }
    EXPECT_FALSE(d.function.empty());
    EXPECT_NE(d.address, 0u);
    EXPECT_FALSE(d.snippet.empty());
    std::string text = d.ToString();
    EXPECT_NE(text.find("RX_READ"), std::string::npos);
    EXPECT_NE(text.find(d.function), std::string::npos);
    break;
  }
}

}  // namespace
}  // namespace krx
