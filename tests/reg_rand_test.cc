// Register randomization extension (§5.3 complement).
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

TEST(RegRand, PermutesOnlyThePool) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRI(Reg::kRbx, 1));
  b.Emit(Instruction::MovRI(Reg::kR12, 2));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kR12));
  b.Emit(Instruction::Load(Reg::kR13, MemOperand::Base(Reg::kRdi, 8)));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRbx));
  b.Emit(Instruction::Ret());
  Function fn = b.Build();
  Rng rng(4);  // a seed whose permutation moves something
  RegRandStats stats;
  ASSERT_TRUE(ApplyRegRandPass(fn, rng, &stats).ok());
  EXPECT_EQ(stats.functions_renamed, 1u);
  // Non-pool registers are untouched.
  for (const BasicBlock& blk : fn.blocks()) {
    for (const Instruction& inst : blk.insts) {
      EXPECT_NE(inst.r1, Reg::kR10);
      EXPECT_NE(inst.r1, Reg::kR11);
      if (inst.op == Opcode::kLoad) {
        EXPECT_EQ(inst.mem.base, Reg::kRdi);  // argument register unchanged
      }
      if (inst.op == Opcode::kMovRR) {
        EXPECT_EQ(inst.r1, Reg::kRax);  // return register unchanged
      }
    }
  }
}

TEST(RegRand, DifferentSeedsYieldDifferentAssignments) {
  int differing = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    FunctionBuilder b("f");
    b.Emit(Instruction::MovRI(Reg::kRbx, 7));
    b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRbx));
    b.Emit(Instruction::Ret());
    Function fn = b.Build();
    Rng rng(seed);
    RegRandStats stats;
    ASSERT_TRUE(ApplyRegRandPass(fn, rng, &stats).ok());
    if (stats.operands_rewritten > 0) {
      ++differing;
      // Consistency: both uses of the logical value renamed together.
      const auto& insts = fn.blocks()[0].insts;
      EXPECT_EQ(insts[0].r1, insts[1].r2);
      EXPECT_NE(insts[0].r1, Reg::kRbx);
    }
  }
  EXPECT_GT(differing, 0);  // 4/5 of permutations move rbx
}

TEST(RegRand, SemanticTransparencyOnTheBenchCorpus) {
  // The generated ops never rely on pool registers across calls, so a
  // renamed kernel must compute identical results.
  KernelSource src = MakeBenchSource(0x5EED);
  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(vanilla.ok());
  auto base = MeasureAllRows(*vanilla);
  ASSERT_TRUE(base.ok());

  ProtectionConfig config = ProtectionConfig::Full(false, RaScheme::kDecoy, 0x5EED);
  config.randomize_registers = true;
  auto renamed = CompileKernel(src, {config, LayoutKind::kKrx});
  ASSERT_TRUE(renamed.ok());
  EXPECT_GT(renamed->stats.reg_rand.operands_rewritten, 0u);
  auto rows = MeasureAllRows(*renamed);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i].rax, (*base)[i].rax) << (*rows)[i].row;
  }
}

TEST(RegRand, GadgetSemanticsDiverge) {
  // The point of the scheme: the same *source* gadget ends up moving
  // different architectural registers in different builds, so a payload
  // precomputed against one register assignment misbehaves on another.
  auto build = [](uint64_t seed) {
    KernelSource src = MakeBaseSource();
    ProtectionConfig config;
    config.randomize_registers = true;
    config.seed = seed;
    auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kVanilla});
    KRX_CHECK(kernel.ok());
    return std::move(*kernel);
  };
  // util functions use pool registers in their pop-reg epilogues; compare
  // the architectural registers across seeds.
  int diverged = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    CompiledKernel a = build(100);
    CompiledKernel b = build(100 + seed);
    for (int i = 0; i < 48; ++i) {
      std::string name = "util_" + std::to_string(i);
      auto aa = a.image->symbols().AddressOf(name);
      auto ba = b.image->symbols().AddressOf(name);
      if (!aa.ok() || !ba.ok()) {
        continue;
      }
      int32_t ai = a.image->symbols().Find(name);
      int32_t bi = b.image->symbols().Find(name);
      uint64_t size = a.image->symbols().at(ai).size;
      if (size != b.image->symbols().at(bi).size) {
        ++diverged;
        continue;
      }
      std::vector<uint8_t> abytes(size), bbytes(size);
      KRX_CHECK(a.image->PeekBytes(*aa, abytes.data(), size).ok());
      KRX_CHECK(b.image->PeekBytes(*ba, bbytes.data(), size).ok());
      if (abytes != bbytes) {
        ++diverged;
      }
    }
  }
  EXPECT_GT(diverged, 0);
}

}  // namespace
}  // namespace krx
