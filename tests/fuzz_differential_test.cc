// Differential fuzzing: structured random kernel functions are compiled
// vanilla and under every protection column; all variants must compute the
// same result (%rax and the written memory region), return cleanly, and
// never fire a spurious R^X violation. This is the semantic-transparency
// invariant of DESIGN.md §5 exercised far beyond the hand-written ops.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/isa/encoding.h"
#include "src/ir/builder.h"
#include "src/rerand/engine.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

// Registers the generator computes with. %rax is the fold target; %r9 is
// reserved for loop counters; %r10/%r11 belong to the instrumentation;
// argument/string registers are handled specially.
constexpr Reg kPool[] = {Reg::kRbx, Reg::kRcx, Reg::kRdx, Reg::kR8,
                         Reg::kR12, Reg::kR13, Reg::kR14, Reg::kR15};

class RandomProgram {
 public:
  RandomProgram(KernelSource* src, uint64_t seed) : src_(src), rng_(seed) {}

  // Emits `count` functions; later ones may call earlier ones.
  std::vector<std::string> EmitFunctions(int count) {
    std::vector<std::string> names;
    for (int i = 0; i < count; ++i) {
      std::string name = "fuzz" + std::to_string(seed_tag_) + "_" + std::to_string(i);
      EmitOne(name, names);
      names.push_back(name);
    }
    return names;
  }

  void set_seed_tag(uint64_t tag) { seed_tag_ = tag; }

 private:
  Reg PickReg() { return kPool[rng_.NextBelow(std::size(kPool))]; }
  int64_t ReadDisp() { return 8 * static_cast<int64_t>(rng_.NextBelow(512)); }
  int64_t WriteDisp() { return 4096 + 8 * static_cast<int64_t>(rng_.NextBelow(512)); }

  void EmitArith(FunctionBuilder& b) {
    Reg r = PickReg();
    switch (rng_.NextBelow(6)) {
      case 0: b.Emit(Instruction::AddRI(r, rng_.NextInRange(-1000, 1000))); break;
      case 1: b.Emit(Instruction::XorRI(r, static_cast<int64_t>(rng_.NextBelow(1 << 20)))); break;
      case 2: b.Emit(Instruction::AddRR(r, PickReg())); break;
      case 3: b.Emit(Instruction::SubRR(r, PickReg())); break;
      case 4: b.Emit(Instruction::ShlRI(r, static_cast<int64_t>(rng_.NextBelow(8)))); break;
      default: b.Emit(Instruction::OrRR(r, PickReg())); break;
    }
  }

  void EmitRead(FunctionBuilder& b) {
    Reg r = PickReg();
    switch (rng_.NextBelow(4)) {
      case 0:  // same-base read: coalescible
        b.Emit(Instruction::AddRM(r, MemOperand::Base(Reg::kRdi, ReadDisp())));
        break;
      case 1: {  // pointer chase through a fresh base
        // The base register holds an *address* (build-dependent), so it must
        // not be a pool register that gets folded into the result.
        b.Emit(Instruction::Lea(Reg::kRsi, MemOperand::Base(Reg::kRdi, ReadDisp())));
        b.Emit(Instruction::Load(r, MemOperand::Base(Reg::kRsi, 0)));
        break;
      }
      case 2: {  // bounded indexed read: lea-form check
        Reg idx = PickReg();
        b.Emit(Instruction::MovRI(idx, static_cast<int64_t>(rng_.NextBelow(64))));
        b.Emit(Instruction::AddRM(r, MemOperand::BaseIndex(Reg::kRdi, idx, 8, 0)));
        break;
      }
      default:  // cmp-with-memory: flags from a read
        b.Emit(Instruction::CmpRM(r, MemOperand::Base(Reg::kRdi, ReadDisp())));
        break;
    }
  }

  void EmitDiamond(FunctionBuilder& b) {
    int32_t skip = b.ReserveBlock();
    b.Emit(Instruction::CmpRI(PickReg(), rng_.NextInRange(-50, 50)));
    if (rng_.NextBool(0.4)) {
      // A read between the cmp and the jcc: forces a kept wrapper.
      b.Emit(Instruction::Load(PickReg(), MemOperand::Base(Reg::kRdi, ReadDisp())));
    }
    b.Emit(Instruction::JccBlock(static_cast<Cond>(rng_.NextBelow(12)), skip));
    for (uint64_t i = 0; i < 1 + rng_.NextBelow(3); ++i) {
      EmitArith(b);
    }
    b.Bind(skip);
  }

  void EmitLoop(FunctionBuilder& b) {
    b.Emit(Instruction::MovRI(Reg::kR9, static_cast<int64_t>(1 + rng_.NextBelow(5))));
    int32_t head = b.ReserveBlock();
    b.Bind(head);
    for (uint64_t i = 0; i < 1 + rng_.NextBelow(3); ++i) {
      if (rng_.NextBool(0.5)) {
        EmitRead(b);
      } else {
        EmitArith(b);
      }
    }
    b.Emit(Instruction::SubRI(Reg::kR9, 1));
    b.Emit(Instruction::JccBlock(Cond::kNe, head));
  }

  void EmitWrite(FunctionBuilder& b) {
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRdi, WriteDisp()), PickReg()));
  }

  void EmitCall(FunctionBuilder& b, const std::vector<std::string>& earlier) {
    if (earlier.empty()) {
      EmitArith(b);
      return;
    }
    const std::string& callee = earlier[rng_.NextBelow(earlier.size())];
    // Spill the state a caller cares about; everything is clobbered.
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 8), Reg::kRbx));
    b.Emit(Instruction::CallSym(src_->symbols.Intern(callee)));
    b.Emit(Instruction::Load(Reg::kRdi, MemOperand::Base(Reg::kRsp, 0)));  // restore buf
    b.Emit(Instruction::Load(Reg::kRbx, MemOperand::Base(Reg::kRsp, 8)));
    b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRax));
  }

  void EmitString(FunctionBuilder& b) {
    b.Emit(Instruction::MovRR(Reg::kRsi, Reg::kRdi));
    b.Emit(Instruction::AddRI(Reg::kRdi, 8192 + 8 * static_cast<int64_t>(rng_.NextBelow(64))));
    b.Emit(Instruction::MovRI(Reg::kRcx, static_cast<int64_t>(1 + rng_.NextBelow(24))));
    b.Emit(Instruction::Movsq(/*rep_prefix=*/true));
    b.Emit(Instruction::Load(Reg::kRdi, MemOperand::Base(Reg::kRsp, 0)));
  }

  void EmitOne(const std::string& name, const std::vector<std::string>& earlier) {
    FunctionBuilder b(name);
    b.Emit(Instruction::SubRI(Reg::kRsp, 32));
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRdi));
    for (Reg r : kPool) {
      b.Emit(Instruction::MovRI(r, static_cast<int64_t>(rng_.NextBelow(1 << 16))));
    }
    uint64_t segments = 4 + rng_.NextBelow(10);
    for (uint64_t s = 0; s < segments; ++s) {
      switch (rng_.NextBelow(8)) {
        case 0:
        case 1:
          EmitRead(b);
          break;
        case 2:
          EmitArith(b);
          break;
        case 3:
          EmitDiamond(b);
          break;
        case 4:
          EmitLoop(b);
          break;
        case 5:
          EmitWrite(b);
          break;
        case 6:
          EmitCall(b, earlier);
          break;
        default:
          EmitString(b);
          break;
      }
    }
    // Fold the pool into the return value.
    b.Emit(Instruction::MovRI(Reg::kRax, 0));
    for (Reg r : kPool) {
      b.Emit(Instruction::XorRR(Reg::kRax, r));
    }
    b.Emit(Instruction::AddRI(Reg::kRsp, 32));
    b.Emit(Instruction::Ret());
    src_->functions.push_back(b.Build());
    src_->symbols.Intern(name);
  }

  KernelSource* src_;
  Rng rng_;
  uint64_t seed_tag_ = 0;
};

// Checksum of the writable scratch region (writes + string destinations).
uint64_t RegionChecksum(KernelImage& image, uint64_t buf) {
  uint64_t sum = 0xcbf29ce484222325ULL;
  for (uint64_t off = 4096; off < 16384; off += 8) {
    auto v = image.Peek64(buf + off);
    KRX_CHECK(v.ok());
    sum = (sum ^ *v) * 0x100000001b3ULL;
  }
  return sum;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, AllColumnsAgreeWithVanilla) {
  const uint64_t seed = GetParam();
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed);
  gen.set_seed_tag(seed);
  std::vector<std::string> fns = gen.EmitFunctions(6);

  struct Expected {
    uint64_t rax;
    uint64_t checksum;
  };
  std::vector<Expected> expected;
  {
    auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
    ASSERT_TRUE(vanilla.ok());
    Cpu cpu(vanilla->image.get());
    for (const std::string& fn : fns) {
      auto buf = SetUpOpBuffer(*vanilla->image, seed);
      ASSERT_TRUE(buf.ok());
      RunResult r = cpu.CallFunction(fn, {*buf});
      ASSERT_EQ(r.reason, StopReason::kReturned) << fn;
      expected.push_back({r.rax, RegionChecksum(*vanilla->image, *buf)});
    }
  }

  for (const Column& col : Table1Columns(seed)) {
    auto kernel = CompileKernel(src, {col.config, col.layout});
    ASSERT_TRUE(kernel.ok()) << col.name;
    CpuOptions opts;
    opts.mpx_enabled = col.config.mpx;
    Cpu cpu(kernel->image.get(), CostModel(), opts);
    for (size_t i = 0; i < fns.size(); ++i) {
      auto buf = SetUpOpBuffer(*kernel->image, seed);
      ASSERT_TRUE(buf.ok());
      RunResult r = cpu.CallFunction(fns[i], {*buf});
      ASSERT_EQ(r.reason, StopReason::kReturned) << col.name << "/" << fns[i] << " "
                                                 << ExceptionKindName(r.exception);
      EXPECT_FALSE(r.krx_violation) << col.name << "/" << fns[i] << " spurious violation";
      EXPECT_EQ(r.rax, expected[i].rax) << col.name << "/" << fns[i];
      EXPECT_EQ(RegionChecksum(*kernel->image, *buf), expected[i].checksum)
          << col.name << "/" << fns[i];
    }
  }
}

// O3 vs O4 head-to-head: the O4 elisions and hoists must be invisible to
// the guest (same results, same writes, no spurious violations) while
// strictly reducing dynamic work — the payoff side of the static-analysis
// contract that the verifier re-proves the soundness side of.
TEST_P(FuzzDifferential, O4MatchesO3WithFewerRetiredInstructions) {
  const uint64_t seed = GetParam();
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed ^ 0x04040404);
  gen.set_seed_tag(seed + 300);
  std::vector<std::string> fns = gen.EmitFunctions(6);

  struct Pair {
    const char* name;
    ProtectionConfig o3;
    ProtectionConfig o4;
  };
  ProtectionConfig mpx_o4 = ProtectionConfig::MpxOnly();
  mpx_o4.sfi = SfiLevel::kO4;
  const Pair pairs[] = {
      {"sfi", ProtectionConfig::SfiOnly(SfiLevel::kO3), ProtectionConfig::SfiOnly(SfiLevel::kO4)},
      {"mpx", ProtectionConfig::MpxOnly(), mpx_o4},
  };
  for (const Pair& pair : pairs) {
    auto k3 = CompileKernel(src, {pair.o3, LayoutKind::kKrx});
    auto k4 = CompileKernel(src, {pair.o4, LayoutKind::kKrx});
    ASSERT_TRUE(k3.ok()) << pair.name;
    ASSERT_TRUE(k4.ok()) << pair.name;
    // Static side: O4 strictly generalizes the O3 analysis, so it never
    // emits more checks and never elides fewer. (Emitted counts can tie:
    // hoisting trades an in-loop check for a preheader check one-for-one;
    // the win is dynamic, asserted below.)
    EXPECT_LE(k4->stats.sfi.checks_emitted, k3->stats.sfi.checks_emitted) << pair.name;
    EXPECT_GE(k4->stats.sfi.checks_coalesced, k3->stats.sfi.checks_coalesced) << pair.name;
    CpuOptions opts;
    opts.mpx_enabled = pair.o3.mpx;
    Cpu cpu3(k3->image.get(), CostModel(), opts);
    Cpu cpu4(k4->image.get(), CostModel(), opts);
    uint64_t retired3 = 0;
    uint64_t retired4 = 0;
    for (const std::string& fn : fns) {
      auto buf3 = SetUpOpBuffer(*k3->image, seed);
      auto buf4 = SetUpOpBuffer(*k4->image, seed);
      ASSERT_TRUE(buf3.ok());
      ASSERT_TRUE(buf4.ok());
      RunResult r3 = cpu3.CallFunction(fn, {*buf3});
      RunResult r4 = cpu4.CallFunction(fn, {*buf4});
      const std::string context = std::string(pair.name) + "/" + fn;
      ASSERT_EQ(r3.reason, StopReason::kReturned) << context;
      ASSERT_EQ(r4.reason, StopReason::kReturned) << context;
      EXPECT_FALSE(r4.krx_violation) << context;
      EXPECT_EQ(r4.rax, r3.rax) << context;
      EXPECT_EQ(RegionChecksum(*k4->image, *buf4), RegionChecksum(*k3->image, *buf3)) << context;
      retired3 += r3.instructions;
      retired4 += r4.instructions;
    }
    // The elided checks translate into strictly less dynamic work.
    EXPECT_LT(retired4, retired3) << pair.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Second differential axis: the predecoded-block-cache engine vs. the
// single-step interpreter, over the same random programs. Every
// guest-visible RunResult field must match bit-for-bit — including the
// exception trace after text corruption, when stale cached blocks would be
// the bug.
void ExpectSameRunResult(const RunResult& cached, const RunResult& uncached,
                         const std::string& context) {
  EXPECT_EQ(cached.reason, uncached.reason) << context;
  EXPECT_EQ(cached.exception, uncached.exception) << context;
  EXPECT_EQ(cached.fault_addr, uncached.fault_addr) << context;
  EXPECT_EQ(cached.rax, uncached.rax) << context;
  EXPECT_EQ(cached.instructions, uncached.instructions) << context;
  EXPECT_EQ(cached.deci_cycles, uncached.deci_cycles) << context;
  EXPECT_TRUE(cached.mix == uncached.mix) << context;
  EXPECT_EQ(cached.krx_violation, uncached.krx_violation) << context;
  EXPECT_EQ(cached.xnr_violation, uncached.xnr_violation) << context;
}

TEST_P(FuzzDifferential, CachedEngineMatchesUncached) {
  const uint64_t seed = GetParam();
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed ^ 0xCAFEF00D);
  gen.set_seed_tag(seed + 100);
  std::vector<std::string> fns = gen.EmitFunctions(4);

  std::vector<Column> columns = {
      {"vanilla", ProtectionConfig::Vanilla(), LayoutKind::kVanilla},
      {"SFI(-O3)", ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx},
      {"MPX", ProtectionConfig::MpxOnly(), LayoutKind::kKrx},
      {"X", ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed), LayoutKind::kKrx},
      {"D", ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, seed), LayoutKind::kKrx},
  };
  for (const Column& col : columns) {
    auto kernel = CompileKernel(src, {col.config, col.layout});
    ASSERT_TRUE(kernel.ok()) << col.name;
    KernelImage& image = *kernel->image;
    CpuOptions opts;
    opts.mpx_enabled = col.config.mpx;
    Cpu cached_cpu(&image, CostModel(), opts);
    Cpu uncached_cpu(&image, CostModel(), opts);
    auto buf = SetUpOpBuffer(image, seed);
    ASSERT_TRUE(buf.ok());

    for (const std::string& fn : fns) {
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult u = uncached_cpu.CallFunction(fn, {*buf}, RunOptions{.use_block_cache = false});
      const uint64_t u_sum = RegionChecksum(image, *buf);
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult c = cached_cpu.CallFunction(fn, {*buf}, RunOptions{.use_block_cache = true});
      ExpectSameRunResult(c, u, col.name + "/" + fn);
      EXPECT_EQ(RegionChecksum(image, *buf), u_sum) << col.name << "/" << fn;
    }
    EXPECT_GT(cached_cpu.block_cache().stats().decoded_insts, 0u) << col.name;

    // Corrupt the first function's entry byte after both engines have hot
    // state: the exception traces must still be identical (a stale block
    // would return cleanly instead of trapping).
    auto entry = image.symbols().AddressOf(fns[0]);
    ASSERT_TRUE(entry.ok());
    uint8_t orig = 0;
    ASSERT_TRUE(image.PeekBytes(*entry, &orig, 1).ok());
    const uint8_t evil = 0xCC;  // does not decode: both engines must trap
    ASSERT_TRUE(image.PokeBytes(*entry, &evil, 1).ok());
    RunResult u = uncached_cpu.CallFunction(fns[0], {*buf}, RunOptions{.use_block_cache = false});
    RunResult c = cached_cpu.CallFunction(fns[0], {*buf}, RunOptions{.use_block_cache = true});
    EXPECT_EQ(c.reason, StopReason::kException) << col.name;
    ExpectSameRunResult(c, u, col.name + "/corrupted " + fns[0]);
    ASSERT_TRUE(image.PokeBytes(*entry, &orig, 1).ok());
    RunResult healed = cached_cpu.CallFunction(fns[0], {*buf}, RunOptions{.use_block_cache = true});
    EXPECT_EQ(healed.reason, StopReason::kReturned) << col.name;
  }
}

// Superblock axis: the translate-and-chain engine vs. both older engines,
// over the same random programs. The chained dispatch, the inline
// translation cache and the fastpath handlers must all be invisible in
// every guest-visible RunResult field — including the exception trace after
// injected decoder corruption, when a stale chain would be the bug.
TEST_P(FuzzDifferential, SuperblockEngineMatchesOtherEngines) {
  const uint64_t seed = GetParam();
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed ^ 0x5B5B5B5B);
  gen.set_seed_tag(seed + 500);
  std::vector<std::string> fns = gen.EmitFunctions(4);

  std::vector<Column> columns = {
      {"vanilla", ProtectionConfig::Vanilla(), LayoutKind::kVanilla},
      {"SFI(-O3)", ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx},
      {"SFI(-O4)", ProtectionConfig::SfiOnly(SfiLevel::kO4), LayoutKind::kKrx},
      {"MPX", ProtectionConfig::MpxOnly(), LayoutKind::kKrx},
      {"spec-mask", ProtectionConfig::SpecHardened(SpecMitigation::kMask),
       LayoutKind::kKrx},
  };
  for (const Column& col : columns) {
    auto kernel = CompileKernel(src, {col.config, col.layout});
    ASSERT_TRUE(kernel.ok()) << col.name;
    KernelImage& image = *kernel->image;
    CpuOptions opts;
    opts.mpx_enabled = col.config.mpx;
    Cpu sb_cpu(&image, CostModel(), opts);
    Cpu cached_cpu(&image, CostModel(), opts);
    Cpu step_cpu(&image, CostModel(), opts);
    auto buf = SetUpOpBuffer(image, seed);
    ASSERT_TRUE(buf.ok());

    for (const std::string& fn : fns) {
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult u =
          step_cpu.CallFunction(fn, {*buf}, RunOptions{.engine = ExecEngine::kSingleStep});
      const uint64_t u_sum = RegionChecksum(image, *buf);
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult c =
          cached_cpu.CallFunction(fn, {*buf}, RunOptions{.engine = ExecEngine::kBlockCache});
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult s =
          sb_cpu.CallFunction(fn, {*buf}, RunOptions{.engine = ExecEngine::kSuperblock});
      ExpectSameRunResult(s, u, col.name + "/" + fn + " (sb vs step)");
      ExpectSameRunResult(s, c, col.name + "/" + fn + " (sb vs cached)");
      EXPECT_EQ(RegionChecksum(image, *buf), u_sum) << col.name << "/" << fn;
    }
    EXPECT_GT(sb_cpu.superblock_cache().stats().chains_built, 0u) << col.name;
    EXPECT_GT(sb_cpu.superblock_cache().stats().executed_insts, 0u) << col.name;

    // Corrupt the first function's entry byte after all three engines have
    // hot state: the exception traces must still be identical (a stale
    // chain would return cleanly instead of trapping).
    auto entry = image.symbols().AddressOf(fns[0]);
    ASSERT_TRUE(entry.ok());
    uint8_t orig = 0;
    ASSERT_TRUE(image.PeekBytes(*entry, &orig, 1).ok());
    const uint8_t evil = 0xCC;  // does not decode: every engine must trap
    ASSERT_TRUE(image.PokeBytes(*entry, &evil, 1).ok());
    RunResult u =
        step_cpu.CallFunction(fns[0], {*buf}, RunOptions{.engine = ExecEngine::kSingleStep});
    RunResult s =
        sb_cpu.CallFunction(fns[0], {*buf}, RunOptions{.engine = ExecEngine::kSuperblock});
    EXPECT_EQ(s.reason, StopReason::kException) << col.name;
    ExpectSameRunResult(s, u, col.name + "/corrupted " + fns[0]);
    ASSERT_TRUE(image.PokeBytes(*entry, &orig, 1).ok());
    RunResult healed =
        sb_cpu.CallFunction(fns[0], {*buf}, RunOptions{.engine = ExecEngine::kSuperblock});
    EXPECT_EQ(healed.reason, StopReason::kReturned) << col.name;
  }
}

// Superblock engine across live re-randomization epochs: chains and inline
// TLB entries were built against the pre-epoch text and page table; the
// epoch's generation bumps must drop both, and the superblocked engine must
// agree bit-for-bit with the single-step interpreter on the re-randomized
// image.
TEST_P(FuzzDifferential, SuperblockEngineMatchesAcrossEpochs) {
  const uint64_t seed = GetParam();
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed ^ 0x5BEED);
  gen.set_seed_tag(seed + 600);
  std::vector<std::string> fns = gen.EmitFunctions(4);

  auto kernel = CompileKernel(
      src, {ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  Cpu sb_cpu(&image);
  Cpu step_cpu(&image);
  RerandEngine engine(&*kernel);
  engine.RegisterCpu(&sb_cpu);
  engine.RegisterCpu(&step_cpu);
  auto buf = SetUpOpBuffer(image, seed);
  ASSERT_TRUE(buf.ok());

  for (int epoch = 0; epoch <= 3; ++epoch) {
    const std::string tag = "epoch" + std::to_string(epoch) + "/";
    for (const std::string& fn : fns) {
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult u =
          step_cpu.CallFunction(fn, {*buf}, RunOptions{.engine = ExecEngine::kSingleStep});
      const uint64_t u_sum = RegionChecksum(image, *buf);
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult s =
          sb_cpu.CallFunction(fn, {*buf}, RunOptions{.engine = ExecEngine::kSuperblock});
      ASSERT_EQ(s.reason, StopReason::kReturned)
          << tag << fn << " " << ExceptionKindName(s.exception);
      ExpectSameRunResult(s, u, tag + fn);
      EXPECT_EQ(RegionChecksum(image, *buf), u_sum) << tag << fn;
    }
    if (epoch < 3) {
      auto r = engine.RunEpoch();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->verified);
    }
  }
  EXPECT_EQ(engine.epochs_completed(), 3u);
  EXPECT_GT(sb_cpu.superblock_cache().stats().flushes, 0u)
      << "the epochs never flushed a chain; the axis proved nothing";
}

// Spec axis: enabling the transient-execution window must be invisible in
// every guest-visible RunResult field and in written memory — windows
// retire nothing, charge nothing, and count nothing (DESIGN.md §15). Runs
// the same random programs spec-on vs. spec-off across the check-emitting
// configs plus both hardened axes; the spec-on Cpu's persistent predictor
// guarantees plenty of real mispredictions along the way.
TEST_P(FuzzDifferential, SpecWindowInvisibleInRunResults) {
  const uint64_t seed = GetParam();
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed ^ 0x57EC);
  gen.set_seed_tag(seed + 400);
  std::vector<std::string> fns = gen.EmitFunctions(4);

  std::vector<Column> columns = {
      {"vanilla", ProtectionConfig::Vanilla(), LayoutKind::kVanilla},
      {"SFI(-O3)", ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx},
      {"MPX", ProtectionConfig::MpxOnly(), LayoutKind::kKrx},
      {"spec-barrier", ProtectionConfig::SpecHardened(SpecMitigation::kBarrier),
       LayoutKind::kKrx},
      {"spec-mask", ProtectionConfig::SpecHardened(SpecMitigation::kMask),
       LayoutKind::kKrx},
  };
  for (const Column& col : columns) {
    auto kernel = CompileKernel(src, {col.config, col.layout});
    ASSERT_TRUE(kernel.ok()) << col.name;
    KernelImage& image = *kernel->image;
    CpuOptions plain_opts;
    plain_opts.mpx_enabled = col.config.mpx;
    CpuOptions spec_opts = plain_opts;
    spec_opts.spec.enabled = true;
    Cpu plain_cpu(&image, CostModel(), plain_opts);
    Cpu spec_cpu(&image, CostModel(), spec_opts);
    SideChannelObserver obs;
    spec_cpu.set_side_channel_observer(&obs);
    auto buf = SetUpOpBuffer(image, seed);
    ASSERT_TRUE(buf.ok());

    for (const std::string& fn : fns) {
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult p = plain_cpu.CallFunction(fn, {*buf});
      const uint64_t p_sum = RegionChecksum(image, *buf);
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult s = spec_cpu.CallFunction(fn, {*buf});
      ExpectSameRunResult(s, p, col.name + "/" + fn);
      EXPECT_EQ(RegionChecksum(image, *buf), p_sum) << col.name << "/" << fn;
    }
    EXPECT_GT(spec_cpu.spec_stats().predictions, 0u) << col.name;
  }
}

// Third differential axis: a live re-randomization epoch between runs. The
// cached engine's predecoded blocks were built against the pre-epoch text;
// the epoch's generation bump must drop them, and both engines must agree
// bit-for-bit on the re-randomized image — a stale block silently executing
// the old layout is exactly the bug this axis exists to catch.
TEST_P(FuzzDifferential, CachedEngineMatchesUncachedAcrossEpochs) {
  const uint64_t seed = GetParam();
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed ^ 0x5EED);
  gen.set_seed_tag(seed + 200);
  std::vector<std::string> fns = gen.EmitFunctions(4);

  auto kernel =
      CompileKernel(src, {ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  Cpu cached_cpu(&image);
  Cpu uncached_cpu(&image);
  RerandEngine engine(&*kernel);
  engine.RegisterCpu(&cached_cpu);
  engine.RegisterCpu(&uncached_cpu);
  auto buf = SetUpOpBuffer(image, seed);
  ASSERT_TRUE(buf.ok());

  for (int epoch = 0; epoch <= 3; ++epoch) {
    const std::string tag = "epoch" + std::to_string(epoch) + "/";
    for (const std::string& fn : fns) {
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult u = uncached_cpu.CallFunction(fn, {*buf}, RunOptions{.use_block_cache = false});
      const uint64_t u_sum = RegionChecksum(image, *buf);
      ASSERT_TRUE(FillOpBuffer(image, *buf, seed).ok());
      RunResult c = cached_cpu.CallFunction(fn, {*buf}, RunOptions{.use_block_cache = true});
      ASSERT_EQ(c.reason, StopReason::kReturned)
          << tag << fn << " " << ExceptionKindName(c.exception);
      ExpectSameRunResult(c, u, tag + fn);
      EXPECT_EQ(RegionChecksum(image, *buf), u_sum) << tag << fn;
    }
    if (epoch < 3) {
      auto r = engine.RunEpoch();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->verified);
    }
  }
  EXPECT_EQ(engine.epochs_completed(), 3u);
}

// Interpreter robustness under corrupted images: random bytes smashed into
// executing code must surface as clean guest exceptions in the RunResult
// (#UD / #BP / #PF / #GP ...), never as host UB. Runs under ASan+UBSan via
// the sanitize label.
TEST(FuzzCorruption, RandomTextBytesNeverCrashTheHost) {
  const uint64_t seed = 0xC0DE;
  KernelSource src = MakeBaseSource();
  RandomProgram gen(&src, seed);
  gen.set_seed_tag(seed);
  std::vector<std::string> fns = gen.EmitFunctions(4);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  KernelImage& image = *kernel->image;
  const PlacedSection* text = image.FindSection(".text");
  ASSERT_NE(text, nullptr);
  Cpu cpu(&image);
  auto buf = SetUpOpBuffer(image, seed);
  ASSERT_TRUE(buf.ok());

  Rng rng(seed);
  int clean_returns = 0;
  int guest_stops = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ASSERT_TRUE(FillOpBuffer(image, *buf, seed + static_cast<uint64_t>(trial)).ok());
    const std::string& fn = fns[rng.NextBelow(fns.size())];

    // Corrupt 1-4 random code bytes, either before the run or mid-run at a
    // random retired-instruction count.
    struct Patch {
      uint64_t addr;
      uint8_t orig;
      uint8_t evil;
    };
    std::vector<Patch> patches;
    const uint64_t n_patches = 1 + rng.NextBelow(4);
    for (uint64_t p = 0; p < n_patches; ++p) {
      Patch patch;
      patch.addr = text->vaddr + rng.NextBelow(text->size);
      uint8_t orig = 0;
      ASSERT_TRUE(image.PeekBytes(patch.addr, &orig, 1).ok());
      patch.orig = orig;
      patch.evil = static_cast<uint8_t>(rng.Next());
      patches.push_back(patch);
    }
    const bool mid_run = rng.NextBool(0.5);
    const uint64_t trigger = 1 + rng.NextBelow(200);
    auto apply = [&image, &patches] {
      for (const Patch& p : patches) {
        (void)image.PokeBytes(p.addr, &p.evil, 1);
      }
    };
    uint64_t retired = 0;
    if (mid_run) {
      cpu.set_step_observer([&](const Cpu&) {
        if (++retired == trigger) {
          apply();
        }
      });
    } else {
      apply();
    }
    RunResult r = cpu.CallFunction(fn, {*buf}, RunOptions{.max_steps = 100'000});
    cpu.set_step_observer(nullptr);
    for (const Patch& p : patches) {
      ASSERT_TRUE(image.PokeBytes(p.addr, &p.orig, 1).ok());
    }

    // Any guest-visible stop is acceptable; what is not acceptable is a
    // host-side failure (or a crash, which ASan would turn into one).
    ASSERT_NE(r.reason, StopReason::kHostError) << fn << ": " << r.host_error;
    if (r.reason == StopReason::kReturned) {
      ++clean_returns;
    } else {
      ++guest_stops;
      if (r.reason == StopReason::kException) {
        EXPECT_NE(r.exception, ExceptionKind::kNone);
      }
    }
  }
  // Sanity on the distribution: corrupted text does trip traps, and patches
  // that miss the executed path return cleanly.
  EXPECT_GT(guest_stops, 0);
  EXPECT_GT(clean_returns, 0);
}

// Truncated images: the final bytes of a function replaced by page-end
// garbage must fault in the guest, not overrun host buffers.
TEST(FuzzCorruption, TruncatedFunctionTailFaultsCleanly) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  KernelImage& image = *kernel->image;
  auto entry = image.symbols().AddressOf("debugfs_leak_read");
  ASSERT_TRUE(entry.ok());
  int32_t sym = image.symbols().Find("debugfs_leak_read");
  ASSERT_GE(sym, 0);
  const uint64_t size = image.symbols().at(sym).size;
  ASSERT_GT(size, 2u);
  Cpu cpu(&image);
  auto buf = image.AllocDataPages(1);
  ASSERT_TRUE(buf.ok());

  // Chop the function's tail (including its ret) to multi-byte garbage that
  // forces the decoder to read past the recorded function end.
  Rng rng(0x7A11);
  for (int trial = 0; trial < 32; ++trial) {
    const uint64_t cut = 1 + rng.NextBelow(size - 1);
    std::vector<uint8_t> orig(size - cut);
    ASSERT_TRUE(image.PeekBytes(*entry + cut, orig.data(), orig.size()).ok());
    std::vector<uint8_t> garbage(orig.size());
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    ASSERT_TRUE(image.PokeBytes(*entry + cut, garbage.data(), garbage.size()).ok());
    RunResult r = cpu.CallFunction("debugfs_leak_read", {*buf}, RunOptions{.max_steps = 10'000});
    ASSERT_NE(r.reason, StopReason::kHostError) << r.host_error;
    ASSERT_TRUE(image.PokeBytes(*entry + cut, orig.data(), orig.size()).ok());
  }
  // Restored image behaves again.
  RunResult r = cpu.CallFunction("debugfs_leak_read", {*buf});
  EXPECT_EQ(r.reason, StopReason::kReturned);
}

// Decoder robustness: random byte soup must decode deterministically (ok or
// error, never crash) and decoded sizes must stay within bounds.
TEST(FuzzDecoder, RandomBytesNeverMisbehave) {
  Rng rng(0xF00D);
  std::vector<uint8_t> soup(1 << 16);
  for (auto& byte : soup) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  size_t valid = 0;
  for (size_t off = 0; off + 1 < soup.size(); ++off) {
    auto dec = DecodeInstruction(soup.data(), soup.size(), off);
    if (dec.ok()) {
      ++valid;
      EXPECT_GE(dec->size, 1);
      EXPECT_LE(dec->size, 16);
    }
  }
  // Plenty of byte sequences decode (gadget feasibility), plenty do not.
  EXPECT_GT(valid, soup.size() / 20);
  EXPECT_LT(valid, soup.size());
}

}  // namespace
}  // namespace krx
