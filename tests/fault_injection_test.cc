// The fault-injection and survivable-oops subsystem (src/fault): campaign
// accounting, structured oops records with RA-decryption-aware backtraces,
// the kill-task recovery policy, host-error paths, and the bounded
// post-link-verify retry in CompileKernel.
#include <gtest/gtest.h>

#include "src/fault/campaign.h"
#include "src/fault/injector.h"
#include "src/fault/oops.h"
#include "src/fault/recovery.h"
#include "src/ir/builder.h"
#include "src/verify/verifier.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/lmbench.h"

namespace krx {
namespace {

// ~100 injections cycle every kernel through all of its eligible classes
// several times; the acceptance contract is zero misclassifications.
TEST(Campaign, SmallCampaignAllAccounted) {
  CampaignOptions options;
  options.seed = 0x51;
  options.injections = 96;
  auto report = RunFaultCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total, 96u);
  EXPECT_TRUE(report->AllAccounted()) << report->ToString();
  EXPECT_DOUBLE_EQ(report->DetectionRate(), 1.0);
  // Every fault class is exercised (the three kernels together are eligible
  // for all of them).
  for (int c = 0; c < static_cast<int>(FaultClass::kNumFaultClasses); ++c) {
    EXPECT_GT(report->per_class[c].injected, 0u)
        << FaultClassName(static_cast<FaultClass>(c));
  }
  // Adversarial trap classes produce latency samples.
  EXPECT_GT(report->per_class[static_cast<int>(FaultClass::kTextInt3)].latency_samples, 0u);
}

// Injections restore the image completely: after a pass over every eligible
// class, the post-link verifier still proves the full protection contract.
TEST(Injector, InjectionsComposeAndRestoreImage) {
  auto kernel = CompileKernel(MakeBenchSource(3), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  FaultInjector injector(&*kernel, /*buffer_seed=*/0xB0F);
  Rng rng(11);
  const std::vector<LmbenchRow>& rows = LmbenchRows();
  for (FaultClass cls : injector.EligibleClasses()) {
    const std::string op = "sys_" + rows[rng.NextBelow(rows.size())].profile.name;
    auto outcome = injector.Inject(cls, op, rng);
    ASSERT_TRUE(outcome.ok()) << FaultClassName(cls) << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->correct)
        << FaultClassName(cls) << " " << DetectionName(outcome->detection) << " "
        << outcome->detail;
  }
  VerifyReport report =
      VerifyImage(*kernel->image, VerifyOptions::ForConfig(kernel->config));
  EXPECT_TRUE(report.ok()) << report.Summary(8);
}

TEST(Oops, RecordCapturesViolationState) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  Cpu cpu(kernel->image.get());
  const PlacedSection* text = kernel->image->FindSection(".text");
  ASSERT_NE(text, nullptr);

  RunResult r = cpu.CallFunction("debugfs_leak_read", {text->vaddr});
  ASSERT_EQ(r.reason, StopReason::kHalted);
  ASSERT_TRUE(r.krx_violation);
  ASSERT_TRUE(IsOopsWorthy(r));

  KernelOops oops = BuildOops(cpu, r);
  EXPECT_EQ(oops.reason, StopReason::kHalted);
  EXPECT_TRUE(oops.krx_violation);
  EXPECT_EQ(oops.rip, cpu.rip());
  EXPECT_EQ(oops.instructions, r.instructions);
  EXPECT_EQ(oops.violation_count, 1u);                    // krx_handler bumped it
  EXPECT_EQ(oops.log_marker, 0x6b52585f42554721u);        // "BUG: kR^X" marker
  for (int i = 0; i < kNumGpRegs; ++i) {
    EXPECT_EQ(oops.regs[i], cpu.reg(static_cast<Reg>(i)));
  }
  const std::string rendered = oops.ToString();
  EXPECT_NE(rendered.find("kR^X violation"), std::string::npos);
  EXPECT_NE(rendered.find("krx_violation_count=1"), std::string::npos);
  EXPECT_NE(rendered.find("backtrace:"), std::string::npos);
}

TEST(Oops, CleanReturnIsNotOopsWorthy) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  Cpu cpu(kernel->image.get());
  auto buf = kernel->image->AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(kernel->image->Poke64(*buf, 42).ok());
  RunResult r = cpu.CallFunction("debugfs_leak_read", {*buf});
  ASSERT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 42u);
  EXPECT_FALSE(IsOopsWorthy(r));
}

// Under the X scheme the saved return addresses on the stack are
// XOR-encrypted; the backtrace scanner must recover the caller by trying
// the live per-function xkeys.
TEST(Oops, BacktraceDecryptsEncryptedReturnAddresses) {
  KernelSource src = MakeBaseSource();
  {
    FunctionBuilder b("victim_inner");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
    b.Emit(Instruction::Ret());
    src.functions.push_back(b.Build());
    src.symbols.Intern("victim_inner");
  }
  {
    FunctionBuilder b("victim_outer");
    b.Emit(Instruction::CallSym(src.symbols.Intern("victim_inner")));
    b.Emit(Instruction::Ret());
    src.functions.push_back(b.Build());
    src.symbols.Intern("victim_outer");
  }
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 7), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  Cpu cpu(kernel->image.get());
  const PlacedSection* text = kernel->image->FindSection(".text");
  ASSERT_NE(text, nullptr);

  // The wild read inside victim_inner trips the range check while
  // victim_outer's return address sits encrypted on the stack.
  RunResult r = cpu.CallFunction("victim_outer", {text->vaddr});
  ASSERT_TRUE(IsOopsWorthy(r));
  KernelOops oops = BuildOops(cpu, r);
  bool found_decrypted_caller = false;
  for (const OopsFrame& f : oops.backtrace) {
    if (f.function == "victim_outer") {
      EXPECT_TRUE(f.decrypted);
      EXPECT_NE(f.value, f.code_addr);  // raw slot was ciphertext
      found_decrypted_caller = true;
    }
  }
  EXPECT_TRUE(found_decrypted_caller) << oops.ToString();
  EXPECT_NE(oops.ToString().find("(RA-decrypted)"), std::string::npos);
}

// The tentpole survivability claim: the rogue worker is reaped and the
// remaining tasks' workloads complete correctly.
TEST(Recovery, KillTaskPolicySurvivesRogueWorker) {
  auto report = RunKillTaskScenario(0xD00D, OopsPolicy::kKillTask);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->survived);
  ASSERT_EQ(report->killed_tasks.size(), 1u);
  EXPECT_EQ(report->killed_tasks[0], 3u);  // the rogue worker's task slot
  EXPECT_EQ(report->oops_count, 1u);
  // The rogue worker got exactly its three runs in before dying; the honest
  // workers then finished the whole 64-round schedule between them.
  EXPECT_EQ(report->worker_c_runs, 3u);
  EXPECT_GE(report->counter, 64u);
  EXPECT_EQ(report->worker_a_runs + report->worker_b_runs + report->worker_c_runs,
            report->counter);
  // The oops record names the offender.
  EXPECT_NE(report->first_oops.find("worker_c"), std::string::npos) << report->first_oops;
}

TEST(Recovery, PanicPolicyStopsAtFirstOops) {
  auto report = RunKillTaskScenario(0xD00D, OopsPolicy::kPanic);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->survived);
  EXPECT_TRUE(report->killed_tasks.empty());
  EXPECT_EQ(report->oops_count, 1u);
  EXPECT_LT(report->counter, 64u);  // the schedule never completed
}

// Host-side problems surface as kHostError results, never as aborts.
TEST(HostError, BadEntryAndTooManyArgs) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  Cpu cpu(kernel->image.get());

  RunResult missing = cpu.CallFunction("no_such_entry", {});
  EXPECT_EQ(missing.reason, StopReason::kHostError);
  EXPECT_FALSE(missing.host_error.empty());
  EXPECT_FALSE(IsOopsWorthy(missing));

  RunResult too_many = cpu.CallFunction("debugfs_leak_read", {1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(too_many.reason, StopReason::kHostError);
  EXPECT_FALSE(too_many.host_error.empty());

  // The machine is still usable after host errors.
  auto buf = kernel->image->AllocDataPages(1);
  ASSERT_TRUE(buf.ok());
  RunResult ok = cpu.CallFunction("debugfs_leak_read", {*buf});
  EXPECT_EQ(ok.reason, StopReason::kReturned);
}

// Clears the post-link mutator hook even when a test fails mid-way.
struct MutatorGuard {
  ~MutatorGuard() { SetPostLinkMutatorForTest(nullptr); }
};

// Remapping a physmap synonym of a code page violates the R^X contract the
// verifier proves — a deterministic way to fail post-link verification.
void CorruptImage(KernelImage& image) {
  const PlacedSection* text = image.FindSection(".text");
  ASSERT_NE(text, nullptr);
  PteFlags f;
  f.present = true;
  f.writable = true;
  f.nx = true;
  image.page_table().MapRange(image.PhysmapVaddr(text->first_frame), text->first_frame, 1, f);
}

TEST(VerifyRetry, TransientFailureRecoversWithRotatedSeed) {
  MutatorGuard guard;
  SetPostLinkVerify(true);
  SetPostLinkMutatorForTest([](KernelImage& image, int attempt) {
    if (attempt == 0) {
      CorruptImage(image);
    }
  });
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 21), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  EXPECT_EQ(kernel->stats.verify_retries, 1u);
  // The retried build changed the diversification seed, and the shipped
  // image itself verifies clean.
  VerifyReport report =
      VerifyImage(*kernel->image, VerifyOptions::ForConfig(kernel->config));
  EXPECT_TRUE(report.ok()) << report.Summary(8);
}

TEST(VerifyRetry, PersistentFailureIsBoundedAndFinal) {
  MutatorGuard guard;
  SetPostLinkVerify(true);
  int attempts_seen = 0;
  SetPostLinkMutatorForTest([&attempts_seen](KernelImage& image, int attempt) {
    attempts_seen = attempt + 1;
    CorruptImage(image);
  });
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 22), LayoutKind::kKrx});
  ASSERT_FALSE(kernel.ok());
  EXPECT_NE(kernel.status().message().find("post-link verification failed"),
            std::string::npos);
  EXPECT_EQ(attempts_seen, kMaxVerifyRetries + 1);  // initial build + retries
}

TEST(VerifyRetry, CleanBuildNeverRetries) {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 23), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  EXPECT_EQ(kernel->stats.verify_retries, 0u);
}

}  // namespace
}  // namespace krx
