// Attack-side components: gadget scanning, the disclosure oracle, and the
// three §7.3 experiments as regression tests.
#include <gtest/gtest.h>

#include "src/attack/experiments.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

CompiledKernel Build(const KernelSource& src, ProtectionConfig config, LayoutKind layout) {
  auto kernel = CompileKernel(src, {config, layout});
  KRX_CHECK(kernel.ok());
  return std::move(*kernel);
}

class AttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    src_ = new KernelSource(MakeBenchSource(0xA77));
  }
  static KernelSource* src_;
};
KernelSource* AttackTest::src_ = nullptr;

TEST_F(AttackTest, ScannerFindsConstructedGadgets) {
  CompiledKernel vanilla = Build(*src_, ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  ExploitLab lab(&vanilla);
  std::vector<uint8_t> text = lab.DumpText();
  GadgetScanner scanner;
  auto gadgets = scanner.Scan(text.data(), text.size(), lab.TextBase());
  EXPECT_GT(gadgets.size(), 100u);
  EXPECT_TRUE(GadgetScanner::FindPopReg(gadgets, Reg::kRdi).has_value());
  EXPECT_TRUE(GadgetScanner::FindPopReg(gadgets, Reg::kRsi).has_value());
  EXPECT_TRUE(GadgetScanner::FindStore(gadgets, Reg::kRdi, Reg::kRsi).has_value());
  EXPECT_TRUE(GadgetScanner::FindMovRR(gadgets, Reg::kRax, Reg::kRdi).has_value());
  // Every gadget ends in ret and contains no control transfer before it.
  for (const Gadget& g : gadgets) {
    ASSERT_FALSE(g.insts.empty());
    EXPECT_EQ(g.insts.back().op, Opcode::kRet);
    for (size_t i = 0; i + 1 < g.insts.size(); ++i) {
      EXPECT_FALSE(g.insts[i].IsTerminator());
      EXPECT_FALSE(g.insts[i].IsCall());
    }
  }
}

TEST_F(AttackTest, OracleLeaksDataButDiesOnCode) {
  CompiledKernel full = Build(*src_, ProtectionConfig::Full(false, RaScheme::kEncrypt, 5),
                              LayoutKind::kKrx);
  ExploitLab lab(&full);
  DisclosureOracle oracle(&lab.cpu());
  auto table = full.image->symbols().AddressOf(kSyscallTableName);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(oracle.Leak(*table).ok());
  EXPECT_FALSE(oracle.kernel_killed());

  const PlacedSection* text = full.image->FindSection(".text");
  auto leak = oracle.Leak(text->vaddr + 64);
  EXPECT_FALSE(leak.ok());
  EXPECT_TRUE(oracle.kernel_killed());
  // Once killed, everything fails (the machine halted).
  EXPECT_FALSE(oracle.Leak(*table).ok());
}

TEST_F(AttackTest, OracleFaultsOnUnmappedSynonym) {
  // Reading the (removed) physmap synonym of kernel code oopses with a page
  // fault, not a kR^X violation — a different, equally fatal outcome.
  CompiledKernel full = Build(*src_, ProtectionConfig::Full(false, RaScheme::kEncrypt, 5),
                              LayoutKind::kKrx);
  ExploitLab lab(&full);
  DisclosureOracle oracle(&lab.cpu());
  const PlacedSection* text = full.image->FindSection(".text");
  uint64_t synonym = full.image->PhysmapVaddr(text->first_frame);
  auto leak = oracle.Leak(synonym);
  EXPECT_FALSE(leak.ok());
  EXPECT_EQ(leak.status().code(), StatusCode::kNotFound);  // #PF, kernel survives
  EXPECT_FALSE(oracle.kernel_killed());
}

TEST_F(AttackTest, VanillaPhysmapSynonymLeaksCode) {
  // On the vanilla layout the alias exists: code is readable through the
  // direct map even without touching the text mapping (ret2dir flavour).
  CompiledKernel vanilla = Build(*src_, ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  ExploitLab lab(&vanilla);
  DisclosureOracle oracle(&lab.cpu());
  const PlacedSection* text = vanilla.image->FindSection(".text");
  uint64_t synonym = vanilla.image->PhysmapVaddr(text->first_frame);
  auto via_synonym = oracle.Leak(synonym);
  auto direct = vanilla.image->Peek64(text->vaddr);
  ASSERT_TRUE(via_synonym.ok() && direct.ok());
  EXPECT_EQ(*via_synonym, *direct);
}

TEST_F(AttackTest, DirectRopEndToEnd) {
  CompiledKernel vanilla = Build(*src_, ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  CompiledKernel hardened = Build(*src_, ProtectionConfig::Full(false, RaScheme::kDecoy, 6),
                                  LayoutKind::kKrx);
  ExploitLab ref(&vanilla), self(&vanilla), target(&hardened);
  EXPECT_TRUE(DirectRopAttack(ref, self).success);
  EXPECT_FALSE(DirectRopAttack(ref, target).success);
}

TEST_F(AttackTest, DirectJitRopKilledByRx) {
  CompiledKernel kaslr_only = Build(*src_, ProtectionConfig::DiversifyOnly(RaScheme::kNone, 7),
                                    LayoutKind::kKrx);
  CompiledKernel full = Build(*src_, ProtectionConfig::Full(false, RaScheme::kEncrypt, 7),
                              LayoutKind::kKrx);
  {
    ExploitLab lab(&kaslr_only);
    AttackOutcome out = DirectJitRopAttack(lab);
    EXPECT_TRUE(out.success) << out.detail;
    EXPECT_GT(out.leaks, 100u);  // it really did harvest pages
  }
  {
    ExploitLab lab(&full);
    AttackOutcome out = DirectJitRopAttack(lab);
    EXPECT_FALSE(out.success);
    EXPECT_TRUE(out.kernel_killed);
  }
}

TEST_F(AttackTest, IndirectJitRopRates) {
  CompiledKernel none = Build(*src_, ProtectionConfig::DiversifyOnly(RaScheme::kNone, 8),
                              LayoutKind::kKrx);
  CompiledKernel enc = Build(*src_, ProtectionConfig::Full(false, RaScheme::kEncrypt, 8),
                             LayoutKind::kKrx);
  CompiledKernel dec = Build(*src_, ProtectionConfig::Full(false, RaScheme::kDecoy, 8),
                             LayoutKind::kKrx);
  {
    ExploitLab lab(&none);
    IndirectJitRopResult r = IndirectJitRopAttack(lab, 2, 64, 1);
    EXPECT_DOUBLE_EQ(r.success_rate, 1.0) << r.outcome.detail;
  }
  {
    ExploitLab lab(&enc);
    IndirectJitRopResult r = IndirectJitRopAttack(lab, 1, 64, 1);
    EXPECT_DOUBLE_EQ(r.success_rate, 0.0) << r.outcome.detail;
  }
  {
    ExploitLab lab(&dec);
    // n = 2: expect ~25%, allow generous sampling noise.
    IndirectJitRopResult r = IndirectJitRopAttack(lab, 2, 512, 1);
    EXPECT_GT(r.pairs_harvested, 2u);
    EXPECT_GT(r.success_rate, 0.10);
    EXPECT_LT(r.success_rate, 0.45);
    EXPECT_TRUE(DecoyTripwireFires(lab));
  }
}

TEST_F(AttackTest, CoarseKaslrFallsToSlideInference) {
  CompiledKernel vanilla = Build(*src_, ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  ProtectionConfig coarse;
  coarse.coarse_kaslr = true;
  coarse.seed = 77;
  CompiledKernel slid = Build(*src_, coarse, LayoutKind::kVanilla);
  // The image moved...
  auto v_commit = vanilla.image->symbols().AddressOf(kCommitCredsName);
  auto s_commit = slid.image->symbols().AddressOf(kCommitCredsName);
  ASSERT_TRUE(v_commit.ok() && s_commit.ok());
  EXPECT_NE(*v_commit, *s_commit);
  // ...but one leaked pointer rebases the whole chain.
  {
    ExploitLab ref(&vanilla), target(&slid);
    EXPECT_TRUE(KaslrSlideBypassAttack(ref, target).success);
  }
  // Fine-grained KASLR shrugs the same technique off.
  CompiledKernel fine = Build(*src_, ProtectionConfig::DiversifyOnly(RaScheme::kNone, 77),
                              LayoutKind::kKrx);
  {
    ExploitLab ref(&vanilla), target(&fine);
    EXPECT_FALSE(KaslrSlideBypassAttack(ref, target).success);
  }
}

TEST_F(AttackTest, DataOnlyPointerAttackIsTheResidualSurface) {
  // §7.3's closing: full kR^X still permits whole-function reuse through
  // corrupted function pointers (data-only attacks)...
  CompiledKernel full = Build(*src_, ProtectionConfig::Full(false, RaScheme::kDecoy, 21),
                              LayoutKind::kKrx);
  {
    ExploitLab lab(&full);
    AttackOutcome out = DataOnlyFunctionPointerAttack(lab);
    EXPECT_TRUE(out.success) << out.detail;
  }
  // ...but NOT gadget-grade reuse: pointing the hook into the middle of a
  // function derails (entry trampolines are all a leaked pointer reveals).
  {
    ExploitLab lab(&full);
    lab.ResetCreds();
    auto hook = full.image->symbols().AddressOf("notifier_hook");
    auto commit = full.image->symbols().AddressOf(kCommitCredsName);
    auto trigger = full.image->symbols().AddressOf("run_notifier");
    ASSERT_TRUE(hook.ok() && commit.ok() && trigger.ok());
    ASSERT_TRUE(full.image->Poke64(*hook, *commit + 7).ok());  // mid-function guess
    RunResult r = lab.cpu().CallFunction(*trigger, {kRootCred});
    EXPECT_FALSE(lab.IsRoot() && r.reason == StopReason::kReturned);
  }
}

TEST_F(AttackTest, Ret2UsrBlockedBySmep) {
  CompiledKernel vanilla = Build(*src_, ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  {
    ExploitLab lab(&vanilla);
    AttackOutcome out = Ret2UsrAttack(lab, /*smep_enabled=*/false);
    EXPECT_TRUE(out.success) << out.detail;  // legacy kernels fall to ret2usr
  }
  {
    ExploitLab lab(&vanilla);
    AttackOutcome out = Ret2UsrAttack(lab, /*smep_enabled=*/true);
    EXPECT_FALSE(out.success) << out.detail;  // the paper's hardening assumption
  }
}

TEST_F(AttackTest, RopChainDerailsIntoPhantomTripwires) {
  // Random addresses inside diversified text overwhelmingly hit phantom
  // padding or mid-instruction bytes: execution traps rather than working.
  CompiledKernel full = Build(*src_, ProtectionConfig::Full(false, RaScheme::kDecoy, 9),
                              LayoutKind::kKrx);
  ExploitLab lab(&full);
  const PlacedSection* text = full.image->FindSection(".text");
  int trapped = 0, total = 0;
  Rng rng(4242);
  for (int i = 0; i < 64; ++i) {
    uint64_t addr = text->vaddr + rng.NextBelow(text->size);
    lab.cpu().set_reg(Reg::kRsp, lab.cpu().stack_top() - 64);
    RunResult r = lab.cpu().RunAt(addr, RunOptions{.max_steps = 64});
    ++total;
    if (r.reason == StopReason::kException || r.krx_violation) {
      ++trapped;
    }
  }
  EXPECT_GT(trapped, total / 2);
}

}  // namespace
}  // namespace krx
