// XnR and HideM baseline defenses (§2): both hide code from direct reads,
// both fall to indirect JIT-ROP — unlike kR^X.
#include <gtest/gtest.h>

#include "src/attack/experiments.h"
#include "src/attack/gadget_scanner.h"
#include "src/kernel/baseline_defenses.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

CompiledKernel BuildPlain(const KernelSource& src) {
  // The baselines run on an undiversified, uninstrumented kernel (they are
  // page-table tricks, not compiler transformations).
  auto kernel = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  KRX_CHECK(kernel.ok());
  return std::move(*kernel);
}

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { src_ = new KernelSource(MakeBenchSource(0xBA5E)); }
  static KernelSource* src_;
};
KernelSource* BaselineTest::src_ = nullptr;

// ---- XnR ----

TEST_F(BaselineTest, XnrExecutionStillWorks) {
  CompiledKernel kernel = BuildPlain(*src_);
  XnrState* xnr = EnableXnr(*kernel.image, /*window_size=*/4);
  Cpu cpu(kernel.image.get());
  RunResult r = cpu.CallFunction("sys_deep_call", {0});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_GT(xnr->fetch_faults(), 0u);  // pages were faulted in on demand
  EXPECT_LE(xnr->resident_pages(), 4u);
}

TEST_F(BaselineTest, XnrWindowEvictsOldestPage) {
  CompiledKernel kernel = BuildPlain(*src_);
  XnrState* xnr = EnableXnr(*kernel.image, /*window_size=*/1);
  Cpu cpu(kernel.image.get());
  // Alternate between two syscalls that live on different text pages: with
  // a single-page window every switch re-faults.
  auto a = kernel.image->symbols().AddressOf("sys_deep_call");
  auto b = kernel.image->symbols().AddressOf("sys_file_io_bw");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_NE(PageFloor(*a), PageFloor(*b));
  auto buf = SetUpOpBuffer(*kernel.image, 1);
  ASSERT_TRUE(buf.ok());
  uint64_t before = xnr->fetch_faults();
  std::vector<uint64_t> zero = {0};
  std::vector<uint64_t> barg = {*buf};
  EXPECT_EQ(cpu.CallFunction(*a, zero).reason, StopReason::kReturned);
  EXPECT_EQ(cpu.CallFunction(*b, barg).reason, StopReason::kReturned);
  EXPECT_EQ(cpu.CallFunction(*a, zero).reason, StopReason::kReturned);
  EXPECT_GE(xnr->fetch_faults() - before, 3u);
  EXPECT_LE(xnr->resident_pages(), 1u);
}

TEST_F(BaselineTest, XnrStopsDirectCodeRead) {
  CompiledKernel kernel = BuildPlain(*src_);
  EnableXnr(*kernel.image, 4);
  ExploitLab lab(&kernel);
  DisclosureOracle oracle(&lab.cpu());
  // A far-away text page is not resident: the data access is detected.
  const PlacedSection* text = kernel.image->FindSection(".text");
  auto leak = oracle.Leak(text->vaddr + text->size - 16);
  EXPECT_FALSE(leak.ok());
  EXPECT_TRUE(oracle.kernel_killed());
}

TEST_F(BaselineTest, XnrWindowPagesRemainReadable) {
  // The inherent XnR window weakness: pages that are resident (present)
  // are readable, because x86 cannot express execute-only.
  CompiledKernel kernel = BuildPlain(*src_);
  EnableXnr(*kernel.image, 8);
  ExploitLab lab(&kernel);
  DisclosureOracle oracle(&lab.cpu());
  // The leak routine's own page is necessarily resident while it runs.
  auto leak_addr = kernel.image->symbols().AddressOf(kLeakSymbolName);
  ASSERT_TRUE(leak_addr.ok());
  lab.cpu().CallFunction(*leak_addr, {lab.cpu().stack_base()});  // warm the window
  auto v = oracle.Leak(PageFloor(*leak_addr));
  EXPECT_TRUE(v.ok()) << v.status().ToString();
}

TEST_F(BaselineTest, XnrFallsToIndirectJitRop) {
  // Davi et al. / Conti et al.: code-pointer harvesting needs no code read.
  CompiledKernel kernel = BuildPlain(*src_);
  EnableXnr(*kernel.image, 4);
  ExploitLab lab(&kernel);
  IndirectJitRopResult r = IndirectJitRopAttack(lab, 2, 64, 11);
  EXPECT_DOUBLE_EQ(r.success_rate, 1.0) << r.outcome.detail;
}

// ---- HideM ----

TEST_F(BaselineTest, HidemExecutionUnchanged) {
  CompiledKernel kernel = BuildPlain(*src_);
  auto split = EnableHidem(*kernel.image, 0x00);
  ASSERT_TRUE(split.ok());
  EXPECT_GT(*split, 0u);
  Cpu cpu(kernel.image.get());
  RunResult r = cpu.CallFunction("sys_deep_call", {0});
  EXPECT_EQ(r.reason, StopReason::kReturned);
}

TEST_F(BaselineTest, HidemDataViewShowsPoison) {
  CompiledKernel kernel = BuildPlain(*src_);
  ASSERT_TRUE(EnableHidem(*kernel.image, 0x00).ok());
  ExploitLab lab(&kernel);
  DisclosureOracle oracle(&lab.cpu());
  const PlacedSection* text = kernel.image->FindSection(".text");
  // Reads of code "succeed" but return only the poison pattern.
  auto v = oracle.Leak(text->vaddr + 64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0u);
  EXPECT_FALSE(oracle.kernel_killed());
}

TEST_F(BaselineTest, HidemFoilsDirectJitRop) {
  CompiledKernel kernel = BuildPlain(*src_);
  ASSERT_TRUE(EnableHidem(*kernel.image, 0x00).ok());
  ExploitLab lab(&kernel);
  AttackOutcome out = DirectJitRopAttack(lab);
  // The harvest reads poison: no gadgets, no escalation — but the kernel
  // also never notices (silent failure, unlike kR^X's halt).
  EXPECT_FALSE(out.success);
  EXPECT_FALSE(out.kernel_killed);
}

// ---- Heisenbyte (destructive code reads, §8) ----

TEST_F(BaselineTest, HeisenbyteDestroysWhatItDiscloses) {
  CompiledKernel kernel = BuildPlain(*src_);
  EnableHeisenbyte(*kernel.image);
  ExploitLab lab(&kernel);
  DisclosureOracle oracle(&lab.cpu());
  auto target = kernel.image->symbols().AddressOf("restore_args_rdi");
  ASSERT_TRUE(target.ok());
  // The read succeeds and returns the *real* bytes...
  auto before = kernel.image->Peek64(*target);
  auto leaked = oracle.Leak(*target);
  ASSERT_TRUE(before.ok() && leaked.ok());
  EXPECT_EQ(*leaked, *before);
  // ...but the bytes are destroyed in place.
  auto after = kernel.image->Peek64(*target);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 0xD7D7D7D7D7D7D7D7ULL);
  // Executing the disclosed-and-destroyed code now traps.
  RunResult r = lab.cpu().RunAt(*target, RunOptions{.max_steps = 8});
  EXPECT_EQ(r.reason, StopReason::kException);
}

TEST_F(BaselineTest, HeisenbyteFoilsDirectJitRop) {
  CompiledKernel kernel = BuildPlain(*src_);
  EnableHeisenbyte(*kernel.image);
  ExploitLab lab(&kernel);
  AttackOutcome out = DirectJitRopAttack(lab);
  // Harvesting works, but every harvested gadget was destroyed by the act
  // of reading it: the payload derails (here the very first harvested page
  // contained the leak routine itself, which the read destroyed — the
  // self-corruption hazard destructive reads accept by design).
  EXPECT_FALSE(out.success) << out.detail;
  EXPECT_GT(out.leaks, 16u);
}

TEST_F(BaselineTest, HeisenbyteBypassedByCodeInference) {
  // Snow et al. [106]: duplicated code yields "zombie gadgets" — read (and
  // destroy) one copy to learn the bytes, execute the intact twin at the
  // same offset. The corpus's krx_memcpy / krx_memcpy_clone pair is exactly
  // such a duplicate.
  CompiledKernel kernel = BuildPlain(*src_);
  EnableHeisenbyte(*kernel.image);
  ExploitLab lab(&kernel);
  DisclosureOracle oracle(&lab.cpu());

  auto copy_a = kernel.image->symbols().AddressOf("krx_memcpy");
  auto copy_b = kernel.image->symbols().AddressOf("krx_memcpy_clone");
  ASSERT_TRUE(copy_a.ok() && copy_b.ok());
  int32_t a_sym = kernel.image->symbols().Find("krx_memcpy");
  uint64_t size = kernel.image->symbols().at(a_sym).size;

  // Read copy A through the vulnerability (destroying it) and locate a
  // gadget: the trailing [mov %rdi,%rax; ret].
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(oracle.LeakBytes(*copy_a, size, &bytes).ok());
  GadgetScanner scanner;
  auto gadgets = scanner.Scan(bytes.data(), bytes.size(), 0);
  auto mov_ret = GadgetScanner::FindMovRR(gadgets, Reg::kRax, Reg::kRdi);
  ASSERT_TRUE(mov_ret.has_value());

  // Copy A is toast at that offset...
  RunResult dead = lab.cpu().RunAt(*copy_a + mov_ret->address, RunOptions{.max_steps = 8});
  EXPECT_EQ(dead.reason, StopReason::kException);

  // ...but the inferred twin executes the zombie gadget fine.
  lab.cpu().set_reg(Reg::kRdi, 0x1337);
  lab.cpu().set_reg(Reg::kRsp, lab.cpu().stack_top() - 16);
  KRX_CHECK(kernel.image->mmu().Write64(lab.cpu().reg(Reg::kRsp), Cpu::kReturnSentinel).ok());
  RunResult alive = lab.cpu().RunAt(*copy_b + mov_ret->address, RunOptions{.max_steps = 8});
  EXPECT_EQ(alive.reason, StopReason::kReturned);
  EXPECT_EQ(alive.rax, 0x1337u);
}

TEST_F(BaselineTest, HidemFallsToIndirectJitRop) {
  CompiledKernel kernel = BuildPlain(*src_);
  ASSERT_TRUE(EnableHidem(*kernel.image, 0x00).ok());
  ExploitLab lab(&kernel);
  IndirectJitRopResult r = IndirectJitRopAttack(lab, 2, 64, 13);
  EXPECT_DOUBLE_EQ(r.success_rate, 1.0) << r.outcome.detail;
}

}  // namespace
}  // namespace krx
