// The mini-VFS substrate: real kernel code paths (path walk, fd bitmap,
// page-cache copies) exercised under every protection column.
#include <gtest/gtest.h>

#include <cstring>

#include "src/cpu/cpu.h"
#include "src/workload/corpus.h"
#include "src/workload/vfs.h"

namespace krx {
namespace {

struct VfsEnv {
  CompiledKernel kernel;
  std::unique_ptr<Cpu> cpu;
  uint64_t user_buf = 0;

  int64_t Open(const std::string& path) {
    VfsPathHashes h = HashPath(path);
    RunResult r = cpu->CallFunction("vfs_open", {h.h1, h.h2, h.h3});
    KRX_CHECK(r.reason == StopReason::kReturned);
    return static_cast<int64_t>(r.rax);
  }
  int64_t Read(int64_t fd, uint64_t qwords) {
    RunResult r = cpu->CallFunction("vfs_read", {static_cast<uint64_t>(fd), user_buf, qwords});
    KRX_CHECK(r.reason == StopReason::kReturned);
    return static_cast<int64_t>(r.rax);
  }
  int64_t Close(int64_t fd) {
    RunResult r = cpu->CallFunction("vfs_close", {static_cast<uint64_t>(fd)});
    KRX_CHECK(r.reason == StopReason::kReturned);
    return static_cast<int64_t>(r.rax);
  }
  std::string BufString(size_t len) {
    std::vector<uint8_t> bytes(len);
    KRX_CHECK(kernel.image->PeekBytes(user_buf, bytes.data(), len).ok());
    return std::string(bytes.begin(), bytes.end());
  }
};

VfsEnv MakeEnv(ProtectionConfig config, LayoutKind layout) {
  KernelSource src = MakeBaseSource();
  AddVfs(&src, DefaultVfsImage());
  auto kernel = CompileKernel(std::move(src), {config, layout});
  KRX_CHECK(kernel.ok());
  VfsEnv env{std::move(*kernel), nullptr, 0};
  env.cpu = std::make_unique<Cpu>(env.kernel.image.get());
  auto buf = env.kernel.image->AllocDataPages(1);
  KRX_CHECK(buf.ok());
  env.user_buf = *buf;
  return env;
}

TEST(Vfs, OpenReadCloseRoundTrip) {
  VfsEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  int64_t fd = env.Open("etc/passwd");
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.Read(fd, 4), 4);
  EXPECT_EQ(env.BufString(9), "root:x:0:");
  EXPECT_EQ(env.Close(fd), 0);
  EXPECT_EQ(env.Read(fd, 1), -1);  // closed fd
}

TEST(Vfs, LookupMissesAndDirectories) {
  VfsEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  EXPECT_EQ(env.Open("etc/shadow"), -1);          // missing file
  EXPECT_EQ(env.Open("nonexistent/a"), -1);       // missing directory
  EXPECT_EQ(env.Open("etc"), -1);                 // directories cannot be opened
  EXPECT_GE(env.Open("usr/bin/sh"), 0);           // 3-component walk
  EXPECT_GE(env.Open("proc/version"), 0);         // 2-component walk
}

TEST(Vfs, SharedDirectoriesSingleDentry) {
  KernelSource src = MakeBaseSource();
  int dentries = AddVfs(&src, DefaultVfsImage());
  // root + {etc,usr,var,proc} + {bin,log} + 6 files = 13.
  EXPECT_EQ(dentries, 13);
}

TEST(Vfs, FdsAreDistinctAndReusedAfterClose) {
  VfsEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  int64_t a = env.Open("etc/passwd");
  int64_t b = env.Open("etc/hosts");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(env.Close(a), 0);
  int64_t c = env.Open("var/log/dmesg");
  EXPECT_EQ(c, a);  // first-fit bitmap hands the slot back
}

TEST(Vfs, FdExhaustion) {
  VfsEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  for (int i = 0; i < kVfsMaxFds; ++i) {
    ASSERT_GE(env.Open("etc/hosts"), 0) << i;
  }
  EXPECT_EQ(env.Open("etc/hosts"), -1);
  EXPECT_EQ(env.Close(0), 0);
  EXPECT_EQ(env.Open("etc/hosts"), 0);
}

TEST(Vfs, BadFdsRejected) {
  VfsEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  EXPECT_EQ(env.Close(-1), -1);
  EXPECT_EQ(env.Close(64), -1);
  EXPECT_EQ(env.Close(5), -1);  // never opened
  EXPECT_EQ(env.Read(7, 1), -1);
}

TEST(Vfs, FstatReportsInodeFields) {
  VfsEnv env = MakeEnv(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  int64_t fd = env.Open("etc/hosts");
  ASSERT_GE(fd, 0);
  RunResult r = env.cpu->CallFunction("vfs_fstat", {static_cast<uint64_t>(fd), env.user_buf});
  ASSERT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 0u);
  auto size = env.kernel.image->Peek64(env.user_buf);
  auto perms = env.kernel.image->Peek64(env.user_buf + 8);
  ASSERT_TRUE(size.ok() && perms.ok());
  EXPECT_EQ(*size, std::strlen("127.0.0.1 localhost\n"));
  EXPECT_EQ(*perms, 0644u);
}

// Every protection column must run the same VFS workload to the same
// results — real code paths, not generated profiles.
class VfsColumns : public ::testing::TestWithParam<int> {};

TEST_P(VfsColumns, SemanticsUnchangedUnderProtection) {
  static const std::pair<ProtectionConfig, LayoutKind> kConfigs[] = {
      {ProtectionConfig::SfiOnly(SfiLevel::kO0), LayoutKind::kKrx},
      {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx},
      {ProtectionConfig::MpxOnly(), LayoutKind::kKrx},
      {ProtectionConfig::Full(false, RaScheme::kEncrypt, 31), LayoutKind::kKrx},
      {ProtectionConfig::Full(false, RaScheme::kDecoy, 31), LayoutKind::kKrx},
      {ProtectionConfig::Full(true, RaScheme::kDecoy, 31), LayoutKind::kKrx},
  };
  auto [config, layout] = kConfigs[static_cast<size_t>(GetParam())];
  VfsEnv env = MakeEnv(config, layout);
  if (config.mpx) {
    // Re-create the CPU with MPX enabled.
    CpuOptions opts;
    opts.mpx_enabled = true;
    env.cpu = std::make_unique<Cpu>(env.kernel.image.get(), CostModel(), opts);
  }
  int64_t fd = env.Open("var/log/dmesg");
  ASSERT_GE(fd, 0);
  ASSERT_EQ(env.Read(fd, 5), 5);
  EXPECT_EQ(env.BufString(12), "[0.000] kR^X");
  EXPECT_EQ(env.Close(fd), 0);
  EXPECT_EQ(env.Open("etc/shadow"), -1);
  // The fd slot is reusable afterwards.
  EXPECT_EQ(env.Open("etc/passwd"), fd);
}

INSTANTIATE_TEST_SUITE_P(Configs, VfsColumns, ::testing::Range(0, 6));

}  // namespace
}  // namespace krx
