// §6 "Legitimate Code Reads": ftrace/KProbes-style code access through
// exempt clones coexists with R^X enforcement on everything else.
#include <gtest/gtest.h>

#include "src/attack/gadget_scanner.h"
#include "src/cpu/cpu.h"
#include "src/isa/encoding.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"

namespace krx {
namespace {

struct Env {
  CompiledKernel kernel;
  std::unique_ptr<Cpu> cpu;
  uint64_t buf = 0;
};

Env MakeEnv() {
  ProtectionConfig config = ProtectionConfig::Full(false, RaScheme::kEncrypt, 3);
  config.exempt_functions = DefaultExemptFunctions();
  auto kernel = CompileKernel(MakeBaseSource(), {config, LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  Env env{std::move(*kernel), nullptr, 0};
  env.cpu = std::make_unique<Cpu>(env.kernel.image.get());
  auto buf = env.kernel.image->AllocDataPages(1);
  KRX_CHECK(buf.ok());
  env.buf = *buf;
  return env;
}

TEST(Tracing, KprobeFetchReadsCodeThroughTheClone) {
  Env env = MakeEnv();
  auto probe_target = env.kernel.image->symbols().AddressOf("commit_creds");
  ASSERT_TRUE(probe_target.ok());
  RunResult r = env.cpu->CallFunction("kprobe_fetch_insn", {env.buf, *probe_target});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_FALSE(r.krx_violation);
  // The fetched bytes decode as the probed function's first instruction.
  uint8_t fetched[16];
  ASSERT_TRUE(env.kernel.image->PeekBytes(env.buf, fetched, sizeof(fetched)).ok());
  uint8_t original[16];
  ASSERT_TRUE(env.kernel.image->PeekBytes(*probe_target, original, sizeof(original)).ok());
  EXPECT_EQ(memcmp(fetched, original, 16), 0);
  auto dec = DecodeInstruction(fetched, sizeof(fetched), 0);
  EXPECT_TRUE(dec.ok());
}

TEST(Tracing, InstrumentedMemcpyDiesOnCode) {
  Env env = MakeEnv();
  const PlacedSection* text = env.kernel.image->FindSection(".text");
  RunResult r = env.cpu->CallFunction("krx_memcpy", {env.buf, text->vaddr, 2});
  EXPECT_TRUE(r.krx_violation);
}

TEST(Tracing, InstrumentedMemcpyWorksOnData) {
  Env env = MakeEnv();
  ASSERT_TRUE(env.kernel.image->Poke64(env.buf + 256, 0xBEEF).ok());
  RunResult r = env.cpu->CallFunction("krx_memcpy", {env.buf, env.buf + 256, 1});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  auto v = env.kernel.image->Peek64(env.buf);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xBEEFu);
}

TEST(Tracing, CloneIsNotReachableThroughTheSyscallTable) {
  // §6: "care was taken to ensure that none of them is leaked through
  // function pointers" — the corpus's syscall table must not expose the
  // exempt clone.
  KernelSource src = MakeBaseSource();
  int32_t clone_sym = src.symbols.Find("krx_memcpy_clone");
  ASSERT_GE(clone_sym, 0);
  for (const DataObject& obj : src.data_objects) {
    for (const auto& slot : obj.pointer_slots) {
      EXPECT_NE(slot.symbol, clone_sym) << "clone leaked through " << obj.name;
    }
  }
}

TEST(ExTable, PlacedInCodeRegionAndUnharvestable) {
  // Footnote 5: code-pointer-bearing tables live above _krx_edata. Reading
  // them through the disclosure bug triggers the R^X machinery; on a
  // vanilla kernel the same table is free to harvest.
  Env env = MakeEnv();
  const PlacedSection* extable = env.kernel.image->FindSection("__ex_table");
  ASSERT_NE(extable, nullptr);
  EXPECT_GE(extable->vaddr, env.kernel.image->krx_edata());
  auto leak = env.kernel.image->symbols().AddressOf("debugfs_leak_read");
  ASSERT_TRUE(leak.ok());
  RunResult r = env.cpu->CallFunction(*leak, {extable->vaddr});
  EXPECT_TRUE(r.krx_violation);

  auto vanilla = CompileKernel(MakeBaseSource(), {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(vanilla.ok());
  Cpu vcpu(vanilla->image.get());
  const PlacedSection* vex = (*vanilla).image->FindSection("__ex_table");
  ASSERT_NE(vex, nullptr);
  auto vleak = (*vanilla).image->symbols().AddressOf("debugfs_leak_read");
  ASSERT_TRUE(vleak.ok());
  RunResult vr = vcpu.CallFunction(*vleak, {vex->vaddr});
  EXPECT_EQ(vr.reason, StopReason::kReturned);
  // The harvested value is a genuine function pointer.
  auto util0 = (*vanilla).image->symbols().AddressOf("util_0");
  ASSERT_TRUE(util0.ok());
  EXPECT_EQ(vr.rax, *util0);
}

TEST(ExTable, NotExecutable) {
  // The table is in the code region but marked NX: jumping into it faults.
  Env env = MakeEnv();
  const PlacedSection* extable = env.kernel.image->FindSection("__ex_table");
  ASSERT_NE(extable, nullptr);
  RunResult r = env.cpu->RunAt(extable->vaddr, RunOptions{.max_steps = 4});
  EXPECT_EQ(r.reason, StopReason::kException);
  EXPECT_EQ(r.exception, ExceptionKind::kPageFault);
}

TEST(JopGadgets, ScannerFindsIndirectBranchGadgets) {
  Env env = MakeEnv();
  const PlacedSection* text = env.kernel.image->FindSection(".text");
  std::vector<uint8_t> bytes(text->size);
  ASSERT_TRUE(env.kernel.image->PeekBytes(text->vaddr, bytes.data(), bytes.size()).ok());
  GadgetScanner scanner;
  auto jop = scanner.ScanJop(bytes.data(), bytes.size(), text->vaddr);
  // The decoy-free encrypted build still has jmp*/callq* material (decoy
  // epilogues are absent, but dispatch gadgets arise from unaligned decode).
  EXPECT_FALSE(jop.empty());
  for (const Gadget& g : jop) {
    EXPECT_EQ(g.kind, GadgetKind::kJop);
    Opcode last = g.insts.back().op;
    EXPECT_TRUE(last == Opcode::kJmpR || last == Opcode::kJmpM || last == Opcode::kCallR ||
                last == Opcode::kCallM);
  }
}

TEST(JopGadgets, RxDeniesJopHarvestingToo) {
  // JOP is mitigated the same way as ROP: the gadget discovery read dies.
  Env env = MakeEnv();
  auto leak = env.kernel.image->symbols().AddressOf("debugfs_leak_read");
  ASSERT_TRUE(leak.ok());
  const PlacedSection* text = env.kernel.image->FindSection(".text");
  RunResult r = env.cpu->CallFunction(*leak, {text->vaddr + 128});
  EXPECT_TRUE(r.krx_violation);
}

}  // namespace
}  // namespace krx
