// Telemetry subsystem acceptance tests (DESIGN.md §11).
//
// Pinned contracts: ring wrap-around loses oldest records only; concurrent
// emission from many threads is race-free (per-thread rings — run this
// under the ASan preset); the sampling guest profiler attributes a spin
// workload to the right function; metric snapshots are a deterministic
// function of (source, seed, config); and the Chrome exporter produces a
// parseable, balanced document with the compile -> bench task -> cpu.run
// nesting plus the rerand epoch span.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/bench_runner/bench_runner.h"
#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/rerand/engine.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/json.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profiler.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

using telemetry::TraceEventType;

// Restores the entry mode when a test that flips it exits.
class ModeGuard {
 public:
  ModeGuard() : saved_(telemetry::Mode()) {}
  ~ModeGuard() { telemetry::SetMode(saved_); }

 private:
  uint32_t saved_;
};

TEST(TraceRing, WrapLosesOldestFirst) {
  telemetry::TraceRing ring(/*tid=*/0, /*capacity=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Emit(TraceEventType::kInstant, "e", /*arg0=*/i);
  }
  EXPECT_EQ(ring.emitted(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<telemetry::TraceRecord> window = ring.Snapshot();
  ASSERT_EQ(window.size(), 8u);
  // The retained window is exactly the most recent 8, oldest-first.
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].arg0, 12 + i) << "slot " << i;
  }
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRing, PartiallyFilledSnapshotInOrder) {
  telemetry::TraceRing ring(0, 8);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Emit(TraceEventType::kInstant, "e", i);
  }
  std::vector<telemetry::TraceRecord> window = ring.Snapshot();
  ASSERT_EQ(window.size(), 5u);
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].arg0, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

// Four threads emit concurrently through the public macro path. Each
// thread owns its ring, so this must be free of data races (the ASan/TSan
// value of this test) and lose nothing below ring capacity.
TEST(TraceRing, ConcurrentEmissionIsPerThreadAndLossless) {
#if defined(KRX_TELEMETRY_DISABLED)
  GTEST_SKIP() << "emission macros compiled out (KRX_TELEMETRY=OFF)";
#endif
  ModeGuard guard;
  telemetry::SetMode(telemetry::kModeMetrics | telemetry::kModeTrace);
  telemetry::ClearAllRings();
  constexpr int kThreads = 4;
  constexpr uint64_t kEvents = 4096;  // below capacity: nothing may drop
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      telemetry::SetThreadName("emitter-" + std::to_string(t));
      for (uint64_t i = 0; i < kEvents; ++i) {
        KRX_TRACE_EVENT(kInstant, "concurrent_event", i, static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  uint64_t per_thread_rings = 0;
  uint64_t total = 0;
  for (const auto& ring : telemetry::AllRings()) {
    std::vector<telemetry::TraceRecord> window = ring->Snapshot();
    uint64_t mine = 0;
    uint64_t last_ts = 0;
    for (const telemetry::TraceRecord& r : window) {
      if (std::string(r.name) != "concurrent_event") {
        continue;
      }
      ++mine;
      EXPECT_GE(r.ts_us, last_ts);  // emission order preserved per ring
      last_ts = r.ts_us;
    }
    if (mine != 0) {
      ++per_thread_rings;
      EXPECT_EQ(mine, kEvents);  // one writer per ring, nothing lost
      total += mine;
    }
  }
  EXPECT_EQ(per_thread_rings, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(total, kThreads * kEvents);
}

// spin_hot: rax accumulates while rcx counts down — millions of retired
// instructions inside one function body, the profiler's easiest target.
void AddSpinFunction(KernelSource* src, int64_t iterations) {
  FunctionBuilder b("spin_hot");
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::MovRI(Reg::kRcx, iterations));
  const int32_t head = b.ReserveBlock();
  b.Bind(head);
  b.Emit(Instruction::AddRR(Reg::kRax, Reg::kRcx));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, head));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("spin_hot");
}

TEST(GuestProfiler, AttributesSpinWorkload) {
  KernelSource src = MakeBaseSource();
  AddSpinFunction(&src, 2'000'000);
  ProtectionConfig config;
  LayoutKind layout;
  ASSERT_TRUE(ParseConfigName("sfi-o3", 0x5A1, &config, &layout));
  auto kernel = CompileKernel(std::move(src), {config, layout});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  KernelImage& image = *kernel->image;

  // Flatten the symbol table into profiler extents (the krx_trace idiom).
  std::vector<telemetry::FunctionExtent> extents;
  uint64_t handler_lo = 0, handler_hi = 0;
  for (size_t i = 0; i < image.symbols().size(); ++i) {
    const Symbol& sym = image.symbols().at(static_cast<int32_t>(i));
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0) {
      continue;
    }
    telemetry::FunctionExtent fn;
    fn.name = sym.name;
    fn.addr = sym.address;
    fn.size = sym.size;
    fn.bytes.resize(sym.size);
    ASSERT_TRUE(image.PeekBytes(sym.address, fn.bytes.data(), fn.bytes.size()).ok());
    if (sym.name == kKrxHandlerName) {
      handler_lo = sym.address;
      handler_hi = sym.address + sym.size;
    }
    extents.push_back(std::move(fn));
  }
  telemetry::GuestProfiler profiler;
  profiler.SetFunctions(std::move(extents), handler_lo, handler_hi);
  std::atomic<uint64_t>* slot = profiler.AddTarget("cpu0");

  Cpu cpu(&image);
  cpu.set_sample_pc_slot(slot);
  profiler.Start(std::chrono::microseconds(50));
  RunOptions run;
  run.max_steps = 100'000'000;
  RunResult r = cpu.CallFunction("spin_hot", {}, run);
  profiler.Stop();
  cpu.set_sample_pc_slot(nullptr);
  ASSERT_EQ(r.reason, StopReason::kReturned);

  telemetry::ProfileReport report = profiler.MakeReport(CostModel());
  const uint64_t busy = report.total_samples - report.idle_samples;
  ASSERT_GT(busy, 20u) << "sampler collected too few busy samples to judge";
  EXPECT_EQ(report.unattributed, 0u);
  uint64_t spin_samples = 0;
  for (const telemetry::FunctionProfile& fn : report.functions) {
    if (fn.name == "spin_hot") {
      spin_samples = fn.samples;
    }
  }
  // >= 90% of busy samples must land in the known-hot function.
  EXPECT_GE(static_cast<double>(spin_samples), 0.9 * static_cast<double>(busy))
      << spin_samples << " of " << busy << " busy samples attributed to spin_hot";
}

// One seeded compile + run, observed through the registry twice: the
// deterministic (non-timing) snapshot must be byte-identical.
TEST(Metrics, DeterministicSnapshotForFixedSeed) {
#if defined(KRX_TELEMETRY_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (KRX_TELEMETRY=OFF)";
#endif
  ModeGuard guard;
  telemetry::SetMode(telemetry::kModeMetrics);
  auto pass = [] {
    telemetry::MetricsRegistry::Global().Reset();
    ProtectionConfig config;
    LayoutKind layout;
    EXPECT_TRUE(ParseConfigName("sfi-o3", 0xDE7, &config, &layout));
    auto kernel = CompileKernel(MakeBenchSource(0xDE7), {config, layout});
    EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
    auto buf = SetUpOpBuffer(*kernel->image, 0xDE7);
    EXPECT_TRUE(buf.ok());
    Cpu cpu(kernel->image.get());
    RunResult r = cpu.CallFunction("sys_read_write", {*buf});
    EXPECT_EQ(r.reason, StopReason::kReturned);
    return telemetry::MetricsRegistry::Global().SnapshotJson(/*include_timing=*/false);
  };
  const std::string first = pass();
  const std::string second = pass();
  EXPECT_EQ(first, second);
  // Sanity: the deterministic snapshot actually contains the run counters.
  EXPECT_NE(first.find("\"cpu.runs\": 1"), std::string::npos) << first;
  EXPECT_NE(first.find("compile.builds"), std::string::npos);
}

TEST(Metrics, DisabledModeEmitsNothing) {
  ModeGuard guard;
  telemetry::SetMode(0);
  telemetry::MetricsRegistry::Global().Reset();
  KRX_COUNTER_ADD("test.disabled_counter", 7);
  telemetry::SetMode(telemetry::kModeMetrics);
  KRX_COUNTER_ADD("test.enabled_counter", 7);
  const std::string snap = telemetry::MetricsRegistry::Global().SnapshotJson();
#if defined(KRX_TELEMETRY_DISABLED)
  EXPECT_EQ(snap.find("test.enabled_counter"), std::string::npos);
#else
  EXPECT_NE(snap.find("\"test.enabled_counter\": 7"), std::string::npos);
#endif
  EXPECT_EQ(snap.find("\"test.disabled_counter\": 7"), std::string::npos);
}

// End-to-end: bench tasks + a live rerand epoch under full tracing, then
// the exported Chrome JSON must parse, balance, and show the promised
// nesting: compile and cpu.run spans inside a bench task span, and the
// rerand.epoch span with its step instants.
TEST(ChromeTrace, ExportParsesAndNestsSpans) {
#if defined(KRX_TELEMETRY_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (KRX_TELEMETRY=OFF)";
#endif
  ModeGuard guard;
  telemetry::SetMode(telemetry::kModeMetrics | telemetry::kModeTrace);
  telemetry::ClearAllRings();

  KernelCache cache(MakeBenchSourceFactory(0xC12));
  BenchRunnerOptions opts;
  opts.threads = 1;
  opts.seed = 0xC12;
  const std::vector<BenchTask> tasks =
      MakeBenchMatrix({"sfi-o3"}, /*lmbench_rows=*/1, /*repeat=*/1, /*with_phoronix=*/false);
  std::vector<TaskResult> results = BenchRunner(opts, &cache).Run(tasks);
  for (const TaskResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
  }

  ProtectionConfig config;
  LayoutKind layout;
  ASSERT_TRUE(ParseConfigName("sfi+x", 0xC12, &config, &layout));
  auto kernel = CompileKernel(MakeBenchSource(0xC12), {config, layout});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  RerandEngine engine(&*kernel);
  auto epoch = engine.RunEpoch();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  const std::string chrome = telemetry::ExportChromeTrace();
  auto doc = telemetry::ParseJson(chrome);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const telemetry::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  // Replay each thread's span stack: the document must be balanced, and
  // the nesting relations must actually occur.
  std::map<double, std::vector<std::string>> stacks;  // tid -> open span names
  bool cpu_run_inside_task = false;
  bool compile_inside_task = false;
  bool rerand_step_inside_epoch = false;
  auto stack_has_task = [](const std::vector<std::string>& stack) {
    for (const std::string& name : stack) {
      if (name.rfind("task:", 0) == 0) {
        return true;
      }
    }
    return false;
  };
  for (const telemetry::JsonValue& ev : events->array) {
    const std::string ph = ev.Find("ph") ? ev.Find("ph")->StringOr("") : "";
    const std::string name = ev.Find("name") ? ev.Find("name")->StringOr("") : "";
    const double tid = ev.Find("tid") ? ev.Find("tid")->NumberOr(-1) : -1;
    std::vector<std::string>& stack = stacks[tid];
    if (ph == "B") {
      if (name == "cpu.run" && stack_has_task(stack)) {
        cpu_run_inside_task = true;
      }
      if (name == "compile" && stack_has_task(stack)) {
        compile_inside_task = true;
      }
      stack.push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stack.empty()) << "unbalanced E on tid " << tid;
      stack.pop_back();
    } else if (ph == "i") {
      const telemetry::JsonValue* args = ev.Find("args");
      const telemetry::JsonValue* type = args ? args->Find("type") : nullptr;
      if (type != nullptr && type->StringOr("") == "rerand_step") {
        for (const std::string& open : stack) {
          if (open == "rerand.epoch") {
            rerand_step_inside_epoch = true;
          }
        }
      }
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span(s) on tid " << tid;
  }
  EXPECT_TRUE(cpu_run_inside_task);
  EXPECT_TRUE(compile_inside_task);
  EXPECT_TRUE(rerand_step_inside_epoch);
}

}  // namespace
}  // namespace krx
