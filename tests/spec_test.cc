// The bounded transient-execution engine (src/spec + the Cpu window):
// predictor training, rollback invisibility, fence/depth/fault window
// termination, preemption across a window, and the Spectre-v1 adversary
// against architectural vs. speculation-hardened builds.
#include <gtest/gtest.h>

#include <memory>

#include "src/attack/spectre.h"
#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/kernel/assembler.h"
#include "src/plugin/pipeline.h"
#include "src/telemetry/metrics.h"
#include "src/workload/corpus.h"

namespace krx {
namespace {

struct MiniKernel {
  std::unique_ptr<KernelImage> image;
  uint64_t entry = 0;
};

MiniKernel MakeKernel(Function fn) {
  SymbolTable symbols;
  KernelLinkInput input;
  Assembler as;
  std::string name = fn.name();
  KRX_CHECK(as.Assemble(fn, &input.text).ok());
  input.phys_bytes = 4ULL << 20;
  auto image = LinkKernel(LayoutKind::kVanilla, std::move(input), std::move(symbols));
  KRX_CHECK(image.ok());
  MiniKernel mk;
  mk.image = std::move(*image);
  auto addr = mk.image->symbols().AddressOf(name);
  KRX_CHECK(addr.ok());
  mk.entry = *addr;
  return mk;
}

CpuOptions SpecOn(uint32_t window_depth = 32) {
  CpuOptions o;
  o.spec.enabled = true;
  o.spec.window_depth = window_depth;
  return o;
}

// cmp rdi, 10; jae <taken block>. Called with rdi >= 10 on a fresh
// (weakly-not-taken) predictor the branch mispredicts, so the fallthrough
// block — everything `emit_wrong_path` adds — runs transiently and only
// transiently. The architectural result is always 7.
template <typename F>
Function GuardedGadget(F emit_wrong_path) {
  FunctionBuilder b("victim");
  int32_t taken = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRdi, 10));
  b.Emit(Instruction::JccBlock(Cond::kAe, taken));
  emit_wrong_path(b);
  b.Emit(Instruction::MovRI(Reg::kRax, 99));
  b.Emit(Instruction::Ret());
  b.Bind(taken);
  b.Emit(Instruction::MovRI(Reg::kRax, 7));
  b.Emit(Instruction::Ret());
  return b.Build();
}

TEST(BranchPredictor, TrainsAndSaturates) {
  BranchPredictor p;
  const uint64_t addr = 0xFFFFFFFF81000123ULL;
  EXPECT_FALSE(p.PredictTaken(addr));  // weakly not-taken out of reset
  p.Update(addr, true);
  EXPECT_TRUE(p.PredictTaken(addr));   // 1 -> 2: now predicts taken
  p.Update(addr, true);
  p.Update(addr, true);                // saturates at 3
  p.Update(addr, false);
  EXPECT_TRUE(p.PredictTaken(addr));   // 3 -> 2: still taken
  p.Update(addr, false);
  EXPECT_FALSE(p.PredictTaken(addr));  // 2 -> 1
  p.Update(addr, true);
  p.Reset();
  EXPECT_FALSE(p.PredictTaken(addr));
}

TEST(SideChannelObserver, LineGranularity) {
  SideChannelObserver obs;
  obs.Touch(0x1000);
  EXPECT_TRUE(obs.LineTouched(0x1000));
  EXPECT_TRUE(obs.LineTouched(0x103F));  // same 64-byte line
  EXPECT_FALSE(obs.LineTouched(0x1040));
  EXPECT_EQ(obs.line_count(), 1u);
  obs.Clear();
  EXPECT_FALSE(obs.LineTouched(0x1000));
  EXPECT_EQ(obs.line_count(), 0u);
}

TEST(Spec, MaskClampsArchitecturally) {
  FunctionBuilder b("f");
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRdi));
  b.Emit(Instruction::MaskRI(Reg::kRax, 100));
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build());
  Cpu cpu(mk.image.get());
  EXPECT_EQ(cpu.CallFunction(mk.entry, {50}).rax, 50u);
  EXPECT_EQ(cpu.CallFunction(mk.entry, {100}).rax, 100u);  // inclusive bound
  EXPECT_EQ(cpu.CallFunction(mk.entry, {101}).rax, 0u);    // clamps, no trap
}

TEST(Spec, RunResultBitIdenticalWithWindowOnOrOff) {
  Function fn = GuardedGadget([](FunctionBuilder& b) {
    b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
    b.Emit(Instruction::AddRR(Reg::kRax, Reg::kRcx));
  });
  MiniKernel mk = MakeKernel(fn);
  Cpu plain(mk.image.get());
  Cpu spec(mk.image.get(), CostModel(), SpecOn());
  for (uint64_t arg : {100u, 3u, 100u, 3u}) {
    RunResult a = plain.CallFunction(mk.entry, {arg});
    RunResult s = spec.CallFunction(mk.entry, {arg});
    EXPECT_EQ(a.reason, s.reason);
    EXPECT_EQ(a.rax, s.rax);
    EXPECT_EQ(a.instructions, s.instructions);
    EXPECT_EQ(a.deci_cycles, s.deci_cycles);
    EXPECT_TRUE(a.mix == s.mix);
  }
}

TEST(Spec, MispredictionRunsWrongPathAndRollsBack) {
  Function fn = GuardedGadget([](FunctionBuilder& b) {
    // Transient-only: a load (leaves a line in the observer) and a register
    // clobber that must never become architectural.
    b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
    b.Emit(Instruction::MovRI(Reg::kRdx, 0xDEAD));
  });
  MiniKernel mk = MakeKernel(fn);
  Cpu cpu(mk.image.get(), CostModel(), SpecOn());
  SideChannelObserver obs;
  cpu.set_side_channel_observer(&obs);
  cpu.set_reg(Reg::kRdx, 0x1111);
  RunResult r = cpu.CallFunction(mk.entry, {100});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 7u);  // the architectural (taken) path
  EXPECT_EQ(cpu.spec_stats().mispredictions, 1u);
  EXPECT_EQ(cpu.spec_stats().windows_opened, 1u);
  EXPECT_GT(obs.line_count(), 0u);                 // the residue survives
  EXPECT_NE(cpu.reg(Reg::kRdx), 0xDEADu);          // the clobber does not
}

TEST(Spec, TrainedBranchStopsMispredicting) {
  Function fn = GuardedGadget([](FunctionBuilder& b) {
    b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
  });
  MiniKernel mk = MakeKernel(fn);
  Cpu cpu(mk.image.get(), CostModel(), SpecOn());
  for (int i = 0; i < 4; ++i) cpu.CallFunction(mk.entry, {100});
  const uint64_t windows = cpu.spec_stats().windows_opened;
  EXPECT_EQ(windows, 1u);  // only the cold first call mispredicted
  cpu.CallFunction(mk.entry, {100});
  EXPECT_EQ(cpu.spec_stats().windows_opened, windows);
}

TEST(Spec, FenceKillsWindowBeforeTheLoad) {
  Function fn = GuardedGadget([](FunctionBuilder& b) {
    b.Emit(Instruction::SpecFence());
    b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
  });
  MiniKernel mk = MakeKernel(fn);
  Cpu cpu(mk.image.get(), CostModel(), SpecOn());
  SideChannelObserver obs;
  cpu.set_side_channel_observer(&obs);
  RunResult r = cpu.CallFunction(mk.entry, {100});
  EXPECT_EQ(r.rax, 7u);
  EXPECT_EQ(cpu.spec_stats().windows_opened, 1u);
  EXPECT_EQ(cpu.spec_stats().fence_kills, 1u);
  EXPECT_EQ(cpu.spec_stats().wrong_path_insts, 1u);  // the fence itself
  EXPECT_EQ(obs.line_count(), 0u);                   // load never issued
}

TEST(Spec, NestedBranchesHitTheDepthCap) {
  // The wrong path is an infinite loop with a (never-taken) nested branch:
  // add; cmp; jcc; jmp — the window must consume predictor-steered nested
  // branches without unwinding them and stop exactly at the depth cap.
  FunctionBuilder b("victim");
  int32_t taken = b.ReserveBlock();
  int32_t loop = b.ReserveBlock();
  int32_t stray = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRdi, 10));
  b.Emit(Instruction::JccBlock(Cond::kAe, taken));
  b.Bind(loop);
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Emit(Instruction::CmpRI(Reg::kRdi, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, stray));
  b.Emit(Instruction::JmpBlock(loop));
  b.Bind(stray);
  b.Emit(Instruction::MovRI(Reg::kRax, 98));
  b.Emit(Instruction::Ret());
  b.Bind(taken);
  b.Emit(Instruction::MovRI(Reg::kRax, 7));
  b.Emit(Instruction::Ret());

  MiniKernel mk = MakeKernel(b.Build());
  Cpu cpu(mk.image.get(), CostModel(), SpecOn(/*window_depth=*/12));
  RunResult r = cpu.CallFunction(mk.entry, {100});
  EXPECT_EQ(r.rax, 7u);
  EXPECT_EQ(cpu.spec_stats().windows_opened, 1u);
  EXPECT_EQ(cpu.spec_stats().wrong_path_insts, 12u);  // exactly the cap
  EXPECT_EQ(cpu.spec_stats().nested_branches, 3u);    // one per iteration
  EXPECT_EQ(cpu.spec_stats().transient_faults, 0u);
}

TEST(Spec, PreemptLandsAfterTheWindowNotInsideIt) {
  // RequestPreempt fired by the step observer at the mispredicting branch:
  // the window is simulated atomically with that branch's retirement, so
  // the run must stop *after* a fully-counted window, at the next boundary.
  Function fn = GuardedGadget([](FunctionBuilder& b) {
    b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
  });
  MiniKernel mk = MakeKernel(fn);
  Cpu cpu(mk.image.get(), CostModel(), SpecOn());
  uint64_t retired = 0;
  cpu.set_step_observer([&cpu, &retired](const Cpu&) {
    if (++retired == 2) {  // cmp, then the jae that opens the window
      cpu.RequestPreempt();
    }
  });
  RunResult r = cpu.CallFunction(mk.entry, {100});
  EXPECT_EQ(r.reason, StopReason::kDeadlineExceeded);
  EXPECT_EQ(r.instructions, 2u);  // mov rax, 7 never retired
  EXPECT_EQ(cpu.spec_stats().windows_opened, 1u);
  EXPECT_GT(cpu.spec_stats().wrong_path_insts, 0u);
}

TEST(Spec, DeadlinePreemptsASpinningSpecRun) {
  FunctionBuilder b("spin");
  int32_t loop = b.ReserveBlock();
  int32_t out = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Bind(loop);
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, out));  // never taken
  b.Emit(Instruction::JmpBlock(loop));
  b.Bind(out);
  b.Emit(Instruction::Ret());
  MiniKernel mk = MakeKernel(b.Build());
  Cpu cpu(mk.image.get(), CostModel(), SpecOn());
  RunOptions opts;
  opts.max_steps = 1ULL << 40;
  opts.deadline_us = 2000;
  RunResult r = cpu.CallFunction(mk.entry, {}, opts);
  EXPECT_EQ(r.reason, StopReason::kDeadlineExceeded);
  EXPECT_GT(cpu.spec_stats().predictions, 0u);
}

TEST(Spec, CountersReachTheMetricsRegistry) {
  Function fn = GuardedGadget([](FunctionBuilder& b) {
    b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
  });
  MiniKernel mk = MakeKernel(fn);
  auto& reg = telemetry::MetricsRegistry::Global();
  const uint64_t windows_before = reg.GetCounter("spec.windows").value();
  const uint64_t pred_before = reg.GetCounter("spec.predictions").value();
  Cpu cpu(mk.image.get(), CostModel(), SpecOn());
  cpu.CallFunction(mk.entry, {100});
  EXPECT_EQ(reg.GetCounter("spec.windows").value(), windows_before + 1);
  EXPECT_GT(reg.GetCounter("spec.predictions").value(), pred_before);
}

// The end-to-end contract the security evaluation enforces across the whole
// config matrix, pinned here on three builds: architectural checks leak,
// both hardened axes do not — each dying its own way.
TEST(Spec, SpectreLeaksArchitecturalOnlyConfigs) {
  KernelSource src = MakeBaseSource();
  auto sfi = CompileKernel(src, {ProtectionConfig::SfiOnly(SfiLevel::kO3),
                                 LayoutKind::kKrx});
  ASSERT_TRUE(sfi.ok()) << sfi.status().ToString();
  SpectreV1Result leak = SpectreV1Attack(*sfi, /*secret_bytes=*/2);
  EXPECT_TRUE(leak.outcome.success);
  EXPECT_GE(leak.bytes_leaked, 1u);

  auto barrier = CompileKernel(
      src, {ProtectionConfig::SpecHardened(SpecMitigation::kBarrier), LayoutKind::kKrx});
  ASSERT_TRUE(barrier.ok()) << barrier.status().ToString();
  SpectreV1Result fenced = SpectreV1Attack(*barrier, /*secret_bytes=*/2);
  EXPECT_FALSE(fenced.outcome.success);
  EXPECT_EQ(fenced.bytes_leaked, 0u);
  EXPECT_GT(fenced.fence_kills, 0u);  // lfence ended the windows

  auto mask = CompileKernel(
      src, {ProtectionConfig::SpecHardened(SpecMitigation::kMask), LayoutKind::kKrx});
  ASSERT_TRUE(mask.ok()) << mask.status().ToString();
  SpectreV1Result masked = SpectreV1Attack(*mask, /*secret_bytes=*/2);
  EXPECT_FALSE(masked.outcome.success);
  EXPECT_EQ(masked.bytes_leaked, 0u);
  EXPECT_GT(masked.transient_faults, 0u);  // clamped-to-0 loads fault out
}

}  // namespace
}  // namespace krx
