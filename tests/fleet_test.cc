// The multi-tenant fleet: CoW image sharing, per-tenant divergence, and the
// semantic witness that a CoW-materialized tenant computes exactly what a
// privately-built control computes.
//
//   - Same-source tenants must alias ONE pristine TextBlob (pointer
//     identity, not equality) and one LinkArtifacts set.
//   - After the per-tenant rerand epoch, tenant layouts must diverge.
//   - A CoW tenant's workload run must be call-for-call and rax-for-rax
//     identical to a private control built from scratch with the same
//     options (instruction counts legitimately differ: diversification pads
//     differently per seed).
//   - MemoryUsage() must report the dedup split correctly.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fleet/fleet.h"
#include "src/fleet/image_key.h"
#include "src/fleet/kernel_cache.h"
#include "src/fleet/tenant.h"
#include "src/workload/harness.h"
#include "src/workload/ipc.h"
#include "src/workload/vfs.h"

namespace krx {
namespace {

KernelCache::SourceFactory FleetSourceFactory(uint64_t seed) {
  return [seed] {
    KernelSource src = MakeBenchSource(seed);
    AddVfs(&src, DefaultVfsImage());
    AddIpc(&src);
    return src;
  };
}

TenantSpec LmbenchTenant(int id, const std::string& config, uint64_t seed) {
  TenantSpec spec;
  spec.tenant_id = id;
  spec.config_name = config;
  spec.seed = seed;
  spec.workload = WorkloadKind::kLmbench;
  spec.op_symbol = "sys_read_write";
  return spec;
}

TEST(ImageKeyTest, PristineKeyCanonicalizesLinkOnlyFields) {
  ProtectionConfig config;
  LayoutKind layout;
  ASSERT_TRUE(ParseConfigName("sfi+x", 0x111, &config, &layout));
  BuildOptions a{config, layout};
  a.seed = 0x111;
  BuildOptions b = a;
  b.seed = 0x222;
  // Different tenants (different seeds): different image keys, same
  // pristine group.
  EXPECT_NE(ImageKey::FromOptions(a), ImageKey::FromOptions(b));
  EXPECT_EQ(ImageKey::FromOptions(a).PristineKey(), ImageKey::FromOptions(b).PristineKey());

  // A different config is a different pristine group.
  ProtectionConfig other;
  ASSERT_TRUE(ParseConfigName("x", 0x111, &other, &layout));
  BuildOptions c{other, layout};
  c.seed = 0x111;
  EXPECT_NE(ImageKey::FromOptions(a).PristineKey(), ImageKey::FromOptions(c).PristineKey());
}

TEST(ImageKeyTest, SpecMitigationIsPartOfTheKey) {
  // spec-barrier/spec-mask emit different bytes than plain sfi-o3; the
  // cache must never serve one when asked for another.
  ProtectionConfig o3;
  ProtectionConfig barrier;
  ProtectionConfig mask;
  LayoutKind layout;
  ASSERT_TRUE(ParseConfigName("sfi-o3", 0x111, &o3, &layout));
  ASSERT_TRUE(ParseConfigName("spec-barrier", 0x111, &barrier, &layout));
  ASSERT_TRUE(ParseConfigName("spec-mask", 0x111, &mask, &layout));
  const ImageKey ko3 = ImageKey::FromOptions({o3, layout});
  const ImageKey kb = ImageKey::FromOptions({barrier, layout});
  const ImageKey km = ImageKey::FromOptions({mask, layout});
  EXPECT_NE(ko3, kb);
  EXPECT_NE(ko3, km);
  EXPECT_NE(kb, km);
  EXPECT_NE(ko3.PristineKey(), kb.PristineKey());
  EXPECT_NE(kb.PristineKey(), km.PristineKey());
}

TEST(FleetTest, SameSourceTenantsShareOnePristineBlob) {
  KernelCache cache(FleetSourceFactory(0xF1EE7));
  FleetOptions options;
  options.base_seed = 0xF1EE7;
  TenantFleet fleet(&cache, options);

  auto a = fleet.Admit(LmbenchTenant(0, "sfi+x", 0xA11CE));
  auto b = fleet.Admit(LmbenchTenant(1, "sfi+x", 0xB0B));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  // Pointer identity: the two tenants' rerand maps alias the SAME blob
  // object, and the same LinkArtifacts — the sharing is real, not a copy.
  const TextBlob* blob_a = (*a)->kernel->rerand->pristine.get();
  const TextBlob* blob_b = (*b)->kernel->rerand->pristine.get();
  ASSERT_NE(blob_a, nullptr);
  EXPECT_EQ(blob_a, blob_b);
  EXPECT_EQ((*a)->kernel->artifacts.get(), (*b)->kernel->artifacts.get());
  EXPECT_EQ(blob_a, (*a)->kernel->artifacts->pristine.get());

  // One compile served both tenants.
  EXPECT_EQ(cache.stats().shared_mode.compiles, 1u);
  EXPECT_EQ(cache.stats().shared_mode.hits, 1u);

  // A different config is a different pristine group.
  auto c = fleet.Admit(LmbenchTenant(2, "x", 0xCA7));
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_NE((*c)->kernel->rerand->pristine.get(), blob_a);
  EXPECT_EQ(cache.stats().shared_mode.compiles, 2u);
}

TEST(FleetTest, TenantLayoutsDivergeAfterEpoch) {
  KernelCache cache(FleetSourceFactory(0xF1EE7));
  FleetOptions options;
  options.base_seed = 0xF1EE7;
  TenantFleet fleet(&cache, options);

  auto a = fleet.Admit(LmbenchTenant(0, "sfi+x", 0xA11CE));
  auto b = fleet.Admit(LmbenchTenant(1, "sfi+x", 0xB0B));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE((*a)->epochs, 1u);
  EXPECT_GE((*b)->epochs, 1u);

  // Same function set, different per-tenant placement: at least one
  // function must sit at a different offset (the whole point of per-tenant
  // diversification; 100+ functions at identical offsets would mean the
  // epoch did nothing).
  const RerandMap& map_a = *(*a)->kernel->rerand;
  const RerandMap& map_b = *(*b)->kernel->rerand;
  ASSERT_EQ(map_a.functions.size(), map_b.functions.size());
  ASSERT_FALSE(map_a.functions.empty());
  bool diverged = false;
  for (size_t i = 0; i < map_a.functions.size(); ++i) {
    EXPECT_EQ(map_a.functions[i].name, map_b.functions[i].name);
    if (map_a.functions[i].current_offset != map_b.functions[i].current_offset) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "tenant layouts must differ after per-tenant epochs";

  // And both diverged from the shared pristine order's base placement: the
  // pristine blob itself is untouched (identical object, immutable).
  EXPECT_EQ(map_a.pristine.get(), map_b.pristine.get());
}

// The acceptance witness: a CoW tenant is semantically bit-identical to a
// control built privately from scratch with the tenant's own options —
// same calls, same rax checksum, over every workload kind.
TEST(FleetTest, CowTenantMatchesPrivateControl) {
  const uint64_t kBaseSeed = 0xF1EE7;
  const uint64_t kTenantSeed = 0x7E4A47;
  KernelCache cache(FleetSourceFactory(kBaseSeed));
  FleetOptions options;
  options.base_seed = kBaseSeed;
  TenantFleet fleet(&cache, options);

  const struct {
    WorkloadKind workload;
    const char* name;
  } kWorkloads[] = {
      {WorkloadKind::kLmbench, "lmbench"},
      {WorkloadKind::kVfs, "vfs"},
      {WorkloadKind::kIpc, "ipc"},
  };

  for (const auto& wl : kWorkloads) {
    SCOPED_TRACE(wl.name);
    TenantSpec spec = LmbenchTenant(0, "sfi+x", kTenantSeed);
    spec.workload = wl.workload;
    auto tenant = fleet.Admit(spec);
    ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
    auto cow = fleet.Serve((*tenant)->index, /*worker=*/0);
    ASSERT_TRUE(cow.ok()) << cow.status().ToString();

    // Control: full CompileKernel with the tenant's exact options, its own
    // Cpu and identically-seeded buffers.
    auto control_options = spec.ResolveBuildOptions(kBaseSeed);
    ASSERT_TRUE(control_options.ok());
    auto control = cache.Acquire(*control_options, Sharing::kPrivate);
    ASSERT_TRUE(control.ok()) << control.status().ToString();
    CpuOptions copts;
    copts.mpx_enabled = (*control)->config.mpx;
    Cpu cpu((*control)->image.get(), CostModel(), copts);
    ASSERT_TRUE(cpu.init_error().empty()) << cpu.init_error();
    auto buffers = SetUpWorkloadBuffers(*(*control)->image, spec.workload, kTenantSeed);
    ASSERT_TRUE(buffers.ok()) << buffers.status().ToString();
    WorkloadCounters expected;
    ASSERT_TRUE(RunWorkloadOnce(cpu, spec, *buffers, RunOptions{}, &expected).ok());

    // Semantic witness: same calls in the same order computing the same
    // values. Instruction counts are NOT compared — diversification pads
    // (nop sleds, decoys) legitimately differ between the base-seed
    // instrumentation and the control's tenant-seed instrumentation.
    EXPECT_EQ(cow->calls, expected.calls);
    EXPECT_EQ(cow->rax_checksum, expected.rax_checksum);
  }
}

TEST(FleetTest, MemoryReportAccountsDedup) {
  KernelCache cache(FleetSourceFactory(0xF1EE7));
  FleetOptions options;
  options.base_seed = 0xF1EE7;
  TenantFleet fleet(&cache, options);

  // 4 tenants over 2 configs: dedup ratio must be 1 - 2/4 = 0.5.
  ASSERT_TRUE(fleet.Admit(LmbenchTenant(0, "sfi+x", 0x1)).ok());
  ASSERT_TRUE(fleet.Admit(LmbenchTenant(1, "sfi+x", 0x2)).ok());
  ASSERT_TRUE(fleet.Admit(LmbenchTenant(2, "x", 0x3)).ok());
  ASSERT_TRUE(fleet.Admit(LmbenchTenant(3, "x", 0x4)).ok());

  const TenantFleet::MemoryReport report = fleet.MemoryUsage();
  EXPECT_EQ(report.tenants, 4);
  EXPECT_EQ(report.pristine_groups, 2);
  EXPECT_DOUBLE_EQ(report.dedup_ratio, 0.5);
  EXPECT_GT(report.shared_bytes, 0u);
  EXPECT_GT(report.image_bytes, 0u);
  EXPECT_EQ(report.cow_total_bytes, report.shared_bytes + report.image_bytes);
  // The naive baseline duplicates the artifacts per tenant; with 4 tenants
  // over 2 groups it must strictly exceed the CoW total by exactly the
  // duplicated artifact bytes.
  EXPECT_EQ(report.naive_total_bytes, report.image_bytes + 2 * report.shared_bytes);
  EXPECT_GT(report.naive_total_bytes, report.cow_total_bytes);
  EXPECT_DOUBLE_EQ(report.avg_bytes_per_tenant,
                   static_cast<double>(report.cow_total_bytes) / 4.0);

  // Per-sharing-mode stats: two shared compiles (one per group), two hits,
  // no private builds through the fleet path.
  const KernelCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.shared_mode.compiles, 2u);
  EXPECT_EQ(stats.shared_mode.hits, 2u);
  EXPECT_EQ(stats.shared_mode.requests, 4u);
  EXPECT_EQ(stats.private_mode.compiles, 0u);
}

TEST(FleetTest, ShardedCacheSpreadsKeys) {
  KernelCache cache(FleetSourceFactory(0xF1EE7), /*shard_count=*/8);
  EXPECT_EQ(cache.shard_count(), 8);
  // Shard assignment is a pure function of the key and in range.
  std::set<int> shards;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    ProtectionConfig config;
    LayoutKind layout;
    ASSERT_TRUE(ParseConfigName("sfi+x", seed, &config, &layout));
    BuildOptions options{config, layout};
    options.seed = seed;
    const int shard = cache.ShardIndex(ImageKey::FromOptions(options));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
    EXPECT_EQ(shard, cache.ShardIndex(ImageKey::FromOptions(options)));
    shards.insert(shard);
  }
  // 32 distinct keys over 8 shards: a hash that lumped them all on one
  // shard would defeat the sharding entirely.
  EXPECT_GT(shards.size(), 1u);
}

}  // namespace
}  // namespace krx
