// Protected modules: mixed code (§6), per-module instrumentation configs,
// module-local xkeys, and R^X enforcement inside module code.
#include <gtest/gtest.h>

#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"

namespace krx {
namespace {

std::vector<Function> MakeModuleFns(const std::string& prefix, SymbolTable& symbols) {
  std::vector<Function> fns;
  {
    FunctionBuilder b(prefix + "_leaf");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8)));
    b.Emit(Instruction::AddRI(Reg::kRax, 3));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    symbols.Intern(prefix + "_leaf");
  }
  {
    FunctionBuilder b(prefix + "_entry");
    b.Emit(Instruction::SubRI(Reg::kRsp, 8));
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRax));
    b.Emit(Instruction::CallSym(symbols.Intern(prefix + "_leaf")));
    b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
    b.Emit(Instruction::AddRR(Reg::kRax, Reg::kRcx));
    b.Emit(Instruction::AddRI(Reg::kRsp, 8));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    symbols.Intern(prefix + "_entry");
  }
  return fns;
}

struct Env {
  CompiledKernel kernel;
  std::unique_ptr<ModuleLoader> loader;
  std::unique_ptr<Cpu> cpu;
  uint64_t buf = 0;
};

Env MakeEnv() {
  auto kernel = CompileKernel(MakeBaseSource(), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 1), LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  Env env{std::move(*kernel), nullptr, nullptr, 0};
  env.loader = std::make_unique<ModuleLoader>(env.kernel.image.get());
  env.cpu = std::make_unique<Cpu>(env.kernel.image.get());
  auto buf = env.kernel.image->AllocDataPages(1);
  KRX_CHECK(buf.ok());
  env.buf = *buf;
  KRX_CHECK(env.kernel.image->Poke64(env.buf, 100).ok());
  KRX_CHECK(env.kernel.image->Poke64(env.buf + 8, 200).ok());
  return env;
}

class ModuleConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModuleConfigSweep, ProtectedModuleComputesCorrectly) {
  static const ProtectionConfig kConfigs[] = {
      ProtectionConfig::Vanilla(),
      ProtectionConfig::SfiOnly(SfiLevel::kO3),
      ProtectionConfig::MpxOnly(),
      ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, 5),
      ProtectionConfig::Full(false, RaScheme::kEncrypt, 5),
      ProtectionConfig::Full(false, RaScheme::kDecoy, 5),
  };
  Env env = MakeEnv();
  std::string prefix = "m" + std::to_string(GetParam());
  auto mod = CompileModule(prefix, MakeModuleFns(prefix, env.kernel.image->symbols()), {},
                           env.kernel.image->symbols(),
                           kConfigs[static_cast<size_t>(GetParam())]);
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  auto handle = env.loader->Load(*mod);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  RunResult r = env.cpu->CallFunction(prefix + "_entry", {env.buf});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  // entry: rax = [buf] + leaf([buf+8]) = 100 + (200 + 3)
  EXPECT_EQ(r.rax, 303u);
}

INSTANTIATE_TEST_SUITE_P(Configs, ModuleConfigSweep, ::testing::Range(0, 6));

TEST(ModuleXkeys, AppendedToTextAndReplenished) {
  Env env = MakeEnv();
  auto mod = CompileModule("enc", MakeModuleFns("enc", env.kernel.image->symbols()), {},
                           env.kernel.image->symbols(),
                           ProtectionConfig::Full(false, RaScheme::kEncrypt, 9));
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ(mod->xkey_bytes, 16u);  // two functions, one xkey each
  EXPECT_EQ(mod->text_symbol_offsets.size(), 2u);
  auto handle = env.loader->Load(*mod);
  ASSERT_TRUE(handle.ok());
  // Keys live inside the module's text mapping (execute-only region) and
  // are nonzero after load.
  const LoadedModule& lm = env.loader->module(*handle);
  for (const char* name : {"xkey$enc_entry", "xkey$enc_leaf"}) {
    auto addr = env.kernel.image->symbols().AddressOf(name);
    ASSERT_TRUE(addr.ok()) << name;
    EXPECT_GE(*addr, lm.text_vaddr);
    EXPECT_LT(*addr, lm.text_vaddr + lm.text_size);
    auto key = env.kernel.image->Peek64(*addr);
    ASSERT_TRUE(key.ok());
    EXPECT_NE(*key, 0u);
  }
  // And the encrypted module still runs.
  RunResult r = env.cpu->CallFunction("enc_entry", {env.buf});
  EXPECT_EQ(r.reason, StopReason::kReturned);
  EXPECT_EQ(r.rax, 303u);
}

TEST(ModuleRx, InstrumentedModuleCannotReadKernelCode) {
  Env env = MakeEnv();
  // A module exposing its own arbitrary-read bug, compiled WITH kR^X.
  std::vector<Function> fns;
  {
    FunctionBuilder b("modleak_read");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    env.kernel.image->symbols().Intern("modleak_read");
  }
  auto mod = CompileModule("modleak", std::move(fns), {}, env.kernel.image->symbols(),
                           ProtectionConfig::SfiOnly(SfiLevel::kO3));
  ASSERT_TRUE(mod.ok());
  ASSERT_TRUE(env.loader->Load(*mod).ok());

  // Data read through the module bug: fine.
  RunResult ok = env.cpu->CallFunction("modleak_read", {env.buf});
  EXPECT_EQ(ok.reason, StopReason::kReturned);
  EXPECT_EQ(ok.rax, 100u);
  // Kernel .text read through the module bug: the module's own range check
  // fires and control lands in the *kernel's* krx_handler (eager binding).
  const PlacedSection* text = env.kernel.image->FindSection(".text");
  RunResult bad = env.cpu->CallFunction("modleak_read", {text->vaddr});
  EXPECT_TRUE(bad.krx_violation);
  // Module text itself is also execute-only: reading it dies too.
  const LoadedModule& lm = env.loader->module(0);
  RunResult bad2 = env.cpu->CallFunction("modleak_read", {lm.text_vaddr});
  EXPECT_TRUE(bad2.krx_violation);
}

TEST(ModuleRx, UnprotectedModuleIsTheWeakLink) {
  // Mixed code cuts both ways: a legacy module's reads are unchecked, so
  // its bugs can still leak kernel code (incremental deployment trade-off).
  Env env = MakeEnv();
  std::vector<Function> fns;
  {
    FunctionBuilder b("legacy_read");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
    b.Emit(Instruction::Ret());
    fns.push_back(b.Build());
    env.kernel.image->symbols().Intern("legacy_read");
  }
  auto mod = CompileModule("legacy", std::move(fns), {}, env.kernel.image->symbols(),
                           ProtectionConfig::Vanilla());
  ASSERT_TRUE(mod.ok());
  ASSERT_TRUE(env.loader->Load(*mod).ok());
  const PlacedSection* text = env.kernel.image->FindSection(".text");
  RunResult r = env.cpu->CallFunction("legacy_read", {text->vaddr});
  EXPECT_EQ(r.reason, StopReason::kReturned);  // leak succeeds (x86: X implies R)
  EXPECT_FALSE(r.krx_violation);
}

}  // namespace
}  // namespace krx
