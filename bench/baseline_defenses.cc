// Baseline-defense comparison (paper §2): XnR and HideM hide kernel code
// from direct reads, but only kR^X (leakage-resilient diversification +
// R^X) stops *indirect* JIT-ROP. One row per defense, one column per
// attack — the executable version of the paper's related-work narrative.
#include <cstdio>

#include <functional>

#include "src/attack/experiments.h"
#include "src/kernel/baseline_defenses.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

struct RowResult {
  const char* name;
  bool direct_jitrop;
  bool direct_killed;
  double indirect_rate;
  const char* note;
};

// Each attack gets a freshly built kernel: destructive-read defenses leave
// the previous attack's scars behind otherwise.
RowResult Evaluate(const char* name, const std::function<CompiledKernel()>& build,
                   const char* note) {
  RowResult row{name, false, false, 0.0, note};
  {
    CompiledKernel kernel = build();
    ExploitLab lab(&kernel);
    AttackOutcome out = DirectJitRopAttack(lab);
    row.direct_jitrop = out.success;
    row.direct_killed = out.kernel_killed;
  }
  {
    CompiledKernel kernel = build();
    ExploitLab lab(&kernel);
    IndirectJitRopResult r = IndirectJitRopAttack(lab, 2, 128, 99);
    row.indirect_rate = r.success_rate;
  }
  return row;
}

int Main() {
  std::printf("kR^X reproduction — baseline execute-only defenses vs. JIT-ROP (paper §2)\n\n");
  const uint64_t seed = 0x2BA5E;
  KernelSource src = MakeBenchSource(seed);

  auto plain = [&src] {
    auto k = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
    KRX_CHECK(k.ok());
    return std::move(*k);
  };
  std::vector<RowResult> rows;
  rows.push_back(Evaluate("no defense", plain, "code readable, addresses static"));
  rows.push_back(Evaluate(
      "XnR [11]",
      [&plain] {
        CompiledKernel k = plain();
        EnableXnr(*k.image, 4);
        return k;
      },
      "window weakness: the leak path's own (resident) page is readable and carries gadgets"));
  rows.push_back(Evaluate(
      "HideM [51]",
      [&plain] {
        CompiledKernel k = plain();
        KRX_CHECK(EnableHidem(*k.image).ok());
        return k;
      },
      "split ITLB/DTLB; reads see poison"));
  rows.push_back(Evaluate(
      "Heisenbyte",
      [&plain] {
        CompiledKernel k = plain();
        EnableHeisenbyte(*k.image);
        return k;
      },
      "destructive reads; bypassed by code inference (zombie gadgets in duplicated code)"));
  rows.push_back(Evaluate(
      "kR^X (SFI+D)",
      [&src, seed] {
        auto k = CompileKernel(src, {ProtectionConfig::Full(false, RaScheme::kDecoy, seed), LayoutKind::kKrx});
        KRX_CHECK(k.ok());
        return std::move(*k);
      },
      "R^X + fine-grained KASLR + decoys"));

  std::printf("%-14s %-28s %-26s %s\n", "defense", "direct JIT-ROP", "indirect JIT-ROP (n=2)",
              "mechanism");
  for (const RowResult& r : rows) {
    char direct[64], indirect[64];
    std::snprintf(direct, sizeof(direct), "%s%s", r.direct_jitrop ? "EXPLOITED" : "defeated",
                  r.direct_killed ? " (halted)" : "");
    std::snprintf(indirect, sizeof(indirect), "success rate %.3f%s", r.indirect_rate,
                  r.indirect_rate > 0.9 ? "  EXPLOITED" : "");
    std::printf("%-14s %-28s %-26s %s\n", r.name, direct, indirect, r.note);
  }
  std::printf("\nPaper §2: \"Davi et al. and Conti et al. showed that Oxymoron, XnR, and HideM\n"
              "can be bypassed using indirect JIT-ROP attacks by merely harvesting code\n"
              "pointers from (readable) data pages\" — reproduced above; kR^X's return-address\n"
              "protection closes exactly that channel.\n");
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
