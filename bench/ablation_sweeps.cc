// E11 — Ablations over the design choices DESIGN.md calls out:
//   (1) SFI optimization-level sweep on total kernel-op cycles,
//   (2) entropy parameter k: phantom padding volume vs. text-size growth,
//   (3) phantom-guard sizing: exempt %rsp reads vs. checked-everything,
//   (4) return-address scheme cost head-to-head (D vs X) per call depth.
#include <cstdio>

#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

uint64_t TotalCycles(CompiledKernel& kernel) {
  auto rows = MeasureAllRows(kernel);
  KRX_CHECK(rows.ok());
  uint64_t total = 0;
  for (const auto& m : *rows) {
    total += m.deci_cycles;
  }
  return total;
}

uint64_t TextSize(const CompiledKernel& kernel) {
  const PlacedSection* t = kernel.image->FindSection(".text");
  return t == nullptr ? 0 : t->size;
}

int Main() {
  const uint64_t seed = 0xAB1A;
  KernelSource src = MakeBenchSource(seed);
  std::printf("kR^X reproduction — ablation sweeps\n");

  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  KRX_CHECK(vanilla.ok());
  const double base = static_cast<double>(TotalCycles(*vanilla));
  const double base_text = static_cast<double>(TextSize(*vanilla));

  std::printf("\n[1] SFI optimization levels (total kernel-op cycles, %% over vanilla)\n");
  struct Lvl {
    const char* name;
    SfiLevel level;
    bool mpx;
  };
  for (const Lvl& l : {Lvl{"O0", SfiLevel::kO0, false}, Lvl{"O1", SfiLevel::kO1, false},
                       Lvl{"O2", SfiLevel::kO2, false}, Lvl{"O3", SfiLevel::kO3, false},
                       Lvl{"MPX", SfiLevel::kO3, true}}) {
    ProtectionConfig c;
    c.sfi = l.level;
    c.mpx = l.mpx;
    auto k = CompileKernel(src, {c, LayoutKind::kKrx});
    KRX_CHECK(k.ok());
    std::printf("  %-4s overhead %7.2f%%   text size +%5.1f%%   checks %llu (coalesced %llu)\n",
                l.name, 100.0 * (static_cast<double>(TotalCycles(*k)) - base) / base,
                100.0 * (static_cast<double>(TextSize(*k)) - base_text) / base_text,
                static_cast<unsigned long long>(k->stats.sfi.checks_emitted),
                static_cast<unsigned long long>(k->stats.sfi.checks_coalesced));
  }

  std::printf("\n[2] entropy parameter k: padding vs. runtime (diversify-only builds)\n");
  for (int kbits : {0, 10, 20, 30, 40, 50}) {
    ProtectionConfig c = ProtectionConfig::DiversifyOnly(RaScheme::kNone, seed);
    c.entropy_bits_k = kbits;
    auto k = CompileKernel(src, {c, LayoutKind::kKrx});
    KRX_CHECK(k.ok());
    std::printf("  k=%-3d phantom blocks %5llu   text size +%5.1f%%   runtime +%5.2f%%\n", kbits,
                static_cast<unsigned long long>(k->stats.kaslr.phantom_blocks),
                100.0 * (static_cast<double>(TextSize(*k)) - base_text) / base_text,
                100.0 * (static_cast<double>(TotalCycles(*k)) - base) / base);
  }

  std::printf("\n[3] %%rsp-read exemption (the .krx_phantom guard trade, §5.1.2)\n");
  {
    auto k = CompileKernel(src, {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
    KRX_CHECK(k.ok());
    std::printf("  with exemption:  %llu checks, %llu stack reads exempt, guard %llu bytes\n",
                static_cast<unsigned long long>(k->stats.sfi.checks_emitted),
                static_cast<unsigned long long>(k->stats.sfi.rsp_reads),
                static_cast<unsigned long long>(k->stats.phantom_guard_size));
    std::printf("  (exempt reads would otherwise add ~%llu more checks on the hottest paths)\n",
                static_cast<unsigned long long>(k->stats.sfi.rsp_reads));
  }

  std::printf("\n[4] return-address protection head-to-head (SFI flavour vs MPX flavour)\n");
  for (bool mpx : {false, true}) {
    for (RaScheme ra : {RaScheme::kDecoy, RaScheme::kEncrypt}) {
      auto k = CompileKernel(src, {ProtectionConfig::Full(mpx, ra, seed), LayoutKind::kKrx});
      KRX_CHECK(k.ok());
      std::printf("  %s+%s: %6.2f%%\n", mpx ? "MPX" : "SFI",
                  ra == RaScheme::kDecoy ? "D" : "X",
                  100.0 * (static_cast<double>(TotalCycles(*k)) - base) / base);
    }
  }
  std::printf("  (paper §7.2: with SFI the scheme choice favours X on PTS; with MPX it favours "
              "D — both schemes stay within ~2%% of each other)\n");
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
