// E4 — Reproduces the instrumentation statistics the paper reports inline in
// §5.1.2: pushfq/popfq elimination (~94% of wrappers removed by O1), lea
// elimination (~95% of checks take the base+disp form at O2), cmp/ja
// coalescing (~1 in 2 checks removed by O3), and safe reads (~4% of all
// memory reads).
#include <cstdio>

#include "src/workload/harness.h"

namespace krx {
namespace {

SfiStats StatsFor(const KernelSource& src, SfiLevel level, bool mpx) {
  ProtectionConfig config;
  config.sfi = level;
  config.mpx = mpx;
  auto kernel = CompileKernel(src, {config, LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  return kernel->stats.sfi;
}

int Main() {
  std::printf("kR^X reproduction — static instrumentation statistics (paper §5.1.2)\n\n");
  KernelSource src = MakeBenchSource(0x57A7);

  SfiStats o1 = StatsFor(src, SfiLevel::kO1, false);
  SfiStats o2 = StatsFor(src, SfiLevel::kO2, false);
  SfiStats o3 = StatsFor(src, SfiLevel::kO3, false);

  std::printf("memory-read sites considered: %llu\n",
              static_cast<unsigned long long>(o3.read_sites));
  std::printf("  safe reads (rip-relative/absolute):    %5.1f%%  (paper: ~4%%)\n",
              o3.SafeReadRate());
  std::printf("  plain %%rsp reads (guard-covered):      %5llu  (max disp %lld, guard must "
              "exceed it)\n",
              static_cast<unsigned long long>(o3.rsp_reads),
              static_cast<long long>(o3.max_rsp_disp));
  std::printf("\nO1  pushfq/popfq pairs eliminated:       %5.1f%%  (paper: up to 94%%)\n",
              o1.WrapperEliminationRate());
  std::printf("O2  lea instructions eliminated:         %5.1f%%  (paper: ~95%%)\n",
              o2.LeaEliminationRate());
  std::printf("O3  range checks coalesced away:         %5.1f%%  (paper: ~1 of every 2)\n",
              o3.CoalescingRate());
  std::printf("\nchecks materialized at O3: %llu (+ %llu string checks placed %s)\n",
              static_cast<unsigned long long>(o3.checks_emitted),
              static_cast<unsigned long long>(o3.string_checks),
              "after rep-prefixed ops");
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
