// Context-switch latency under the kR^X columns (LMBench's lat_ctx, on the
// cooperative scheduler substrate). task_switch itself is exempt assembly,
// so the measured overhead is the instrumentation of everything around it:
// the yield scan loop, the worker bodies, and the return-address machinery
// on the sched_yield frames.
#include <cstdio>

#include "src/base/math_util.h"
#include "src/cpu/cpu.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/sched.h"

namespace krx {
namespace {

double SwitchRoundTripCycles(CompiledKernel& kernel) {
  KRX_CHECK(SetUpTaskStacks(*kernel.image).ok());
  CpuOptions opts;
  opts.mpx_enabled = kernel.config.mpx;
  Cpu cpu(kernel.image.get(), CostModel(), opts);
  KRX_CHECK(cpu.CallFunction("sys_spawn", {0}).rax == 1);
  KRX_CHECK(cpu.CallFunction("sys_spawn", {1}).rax == 2);
  RunResult r = cpu.CallFunction("sched_run", {64});
  KRX_CHECK(r.reason == StopReason::kReturned);
  // One sched_run loop iteration = a full 0 -> a -> b -> 0 rotation: three
  // context switches plus two worker bodies. 32 rotations at counter 64.
  return r.cycles() / 32.0;
}

int Main() {
  std::printf("kR^X reproduction — context-switch rotation latency (cycles per\n"
              "init->worker->worker->init round trip; %% over vanilla)\n\n");
  KernelSource src = MakeBaseSource();
  AddSched(&src);

  auto with_exempt = [](ProtectionConfig config) {
    for (const std::string& name : SchedExemptFunctions()) {
      config.exempt_functions.insert(name);
    }
    return config;
  };

  auto vanilla = CompileKernel(src, {with_exempt(ProtectionConfig::Vanilla()), LayoutKind::kVanilla});
  KRX_CHECK(vanilla.ok());
  double base = SwitchRoundTripCycles(*vanilla);
  std::printf("vanilla: %.1f cycles per rotation\n\n", base);
  std::printf("%-9s %12s\n", "column", "overhead");
  for (const Column& col : Table1Columns(0xC7)) {
    auto kernel = CompileKernel(src, {with_exempt(col.config), col.layout});
    KRX_CHECK(kernel.ok());
    double v = SwitchRoundTripCycles(*kernel);
    std::printf("%-9s %11.2f%%\n", col.name.c_str(), OverheadPercent(base, v));
  }
  std::printf("\n(The exempt switch itself costs the same everywhere; the deltas come from\n"
              "the instrumented scheduler/worker code around it — mirroring how kR^X\n"
              "leaves Linux's assembly stubs untouched, §6.)\n");
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
