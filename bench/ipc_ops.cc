// Overhead of the kR^X columns on the in-kernel IPC paths (pipe ring,
// checksummed socket) — the hand-written analogue of Table 1's pipe/socket
// rows, on code that really moves data through ring buffers.
#include <cstdio>

#include "src/base/math_util.h"
#include "src/base/rng.h"
#include "src/cpu/cpu.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/ipc.h"

namespace krx {
namespace {

struct OpCycles {
  double pipe = 0;  // write+read of a 64-qword chunk
  double sock = 0;  // send+recv of a 16-qword datagram
};

OpCycles Measure(CompiledKernel& kernel) {
  CpuOptions opts;
  opts.mpx_enabled = kernel.config.mpx;
  Cpu cpu(kernel.image.get(), CostModel(), opts);
  auto src = kernel.image->AllocDataPages(1);
  auto dst = kernel.image->AllocDataPages(1);
  KRX_CHECK(src.ok() && dst.ok());
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    KRX_CHECK(kernel.image->Poke64(*src + 8 * i, rng.Next()).ok());
  }

  OpCycles out;
  for (int round = 0; round < 8; ++round) {
    RunResult w = cpu.CallFunction("pipe_write", {*src, 64});
    RunResult r = cpu.CallFunction("pipe_read", {*dst, 64});
    KRX_CHECK(w.rax == 64 && r.rax == 64);
    out.pipe += w.cycles() + r.cycles();
    RunResult s = cpu.CallFunction("sock_send", {*src, 16});
    RunResult v = cpu.CallFunction("sock_recv", {*dst});
    KRX_CHECK(s.rax == 16 && v.rax == 16);
    out.sock += s.cycles() + v.cycles();
  }
  return out;
}

int Main() {
  std::printf("kR^X reproduction — in-kernel IPC overhead (%% over vanilla)\n\n");
  KernelSource src = MakeBaseSource();
  AddIpc(&src);
  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  KRX_CHECK(vanilla.ok());
  OpCycles base = Measure(*vanilla);
  std::printf("vanilla cycles: pipe(64q) %.0f   sock(16q) %.0f\n\n", base.pipe, base.sock);
  std::printf("%-9s %12s %12s\n", "column", "pipe I/O", "socket I/O");
  for (const Column& col : Table1Columns(0xE1)) {
    auto kernel = CompileKernel(src, {col.config, col.layout});
    KRX_CHECK(kernel.ok());
    OpCycles v = Measure(*kernel);
    std::printf("%-9s %11.2f%% %11.2f%%\n", col.name.c_str(),
                OverheadPercent(base.pipe, v.pipe), OverheadPercent(base.sock, v.sock));
  }
  std::printf("\nThe ring copies are element-wise indexed accesses (not rep-string), so the\n"
              "SFI cost per element is visible — the reason Linux uses rep movs for bulk\n"
              "copies, and why the paper's bandwidth rows are nearly free.\n");
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
