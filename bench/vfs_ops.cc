// Overhead of the kR^X protection columns on *real* kernel code paths: the
// mini-VFS syscalls (path walk over the dentry tree, fd bitmap scans,
// stat-struct copies, page-cache rep-copies). A hand-written complement to
// the profile-generated Table 1 rows: the same mechanisms, measured on code
// that actually does something.
#include <cstdio>

#include "src/base/math_util.h"
#include "src/cpu/cpu.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/vfs.h"

namespace krx {
namespace {

struct OpCycles {
  double open = 0;
  double read = 0;
  double fstat = 0;
  double close = 0;
};

OpCycles Measure(CompiledKernel& kernel) {
  CpuOptions opts;
  opts.mpx_enabled = kernel.config.mpx;
  Cpu cpu(kernel.image.get(), CostModel(), opts);
  auto buf = kernel.image->AllocDataPages(1);
  KRX_CHECK(buf.ok());

  OpCycles out;
  const char* paths[] = {"etc/passwd", "usr/bin/sh", "var/log/dmesg", "etc/hosts"};
  for (const char* path : paths) {
    VfsPathHashes h = HashPath(path);
    RunResult open = cpu.CallFunction("vfs_open", {h.h1, h.h2, h.h3});
    KRX_CHECK(open.reason == StopReason::kReturned && open.rax != ~0ULL);
    uint64_t fd = open.rax;
    RunResult read = cpu.CallFunction("vfs_read", {fd, *buf, 4});
    RunResult fstat = cpu.CallFunction("vfs_fstat", {fd, *buf});
    RunResult close = cpu.CallFunction("vfs_close", {fd});
    KRX_CHECK(read.reason == StopReason::kReturned);
    KRX_CHECK(fstat.reason == StopReason::kReturned);
    KRX_CHECK(close.reason == StopReason::kReturned);
    out.open += open.cycles();
    out.read += read.cycles();
    out.fstat += fstat.cycles();
    out.close += close.cycles();
  }
  return out;
}

int Main() {
  std::printf("kR^X reproduction — mini-VFS syscall overhead (%% over vanilla)\n");
  std::printf("real code paths: dentry-tree walk, fd bitmap, inode copy, page-cache copy\n\n");
  const uint64_t seed = 0xF5;
  KernelSource src = MakeBaseSource();
  AddVfs(&src, DefaultVfsImage());

  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  KRX_CHECK(vanilla.ok());
  OpCycles base = Measure(*vanilla);
  std::printf("vanilla cycles: open %.0f  read %.0f  fstat %.0f  close %.0f\n\n", base.open,
              base.read, base.fstat, base.close);

  std::printf("%-9s %10s %10s %10s %10s\n", "column", "open()", "read()", "fstat()", "close()");
  for (const Column& col : Table1Columns(seed)) {
    auto kernel = CompileKernel(src, {col.config, col.layout});
    KRX_CHECK(kernel.ok());
    OpCycles v = Measure(*kernel);
    std::printf("%-9s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", col.name.c_str(),
                OverheadPercent(base.open, v.open), OverheadPercent(base.read, v.read),
                OverheadPercent(base.fstat, v.fstat), OverheadPercent(base.close, v.close));
  }
  std::printf("\nExpected shape: open() (pointer-chasing path walk + calls) is the most\n"
              "expensive; read() is string-copy dominated and nearly free; fstat()'s\n"
              "same-base struct copy coalesces at O3; close()'s bitmap loop is ALU-bound.\n");
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
