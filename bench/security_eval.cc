// E6/E7/E8 — Reproduces §7.3 ("Security"): direct ROP, direct JIT-ROP and
// indirect JIT-ROP against vanilla / partially protected / fully protected
// kernels, plus the layout-diff verification the paper performs.
//
//   security_eval [--trace PATH]
//     --trace runs the whole suite under full event tracing and writes a
//     Chrome trace: one span per attack scenario, with the CPU's
//     kKrxViolation instants landing inside the spans of the attacks the
//     protected kernels defeat (per-attack timeline via krx_trace/Perfetto;
//     validate with `krx_trace validate PATH`).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/attack/experiments.h"
#include "src/attack/gadget_scanner.h"
#include "src/attack/spectre.h"
#include "src/isa/encoding.h"
#include "src/rerand/engine.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

Result<CompiledKernel> Build(const KernelSource& src, ProtectionConfig config,
                             LayoutKind layout) {
  return CompileKernel(src, {config, layout});
}

void Report(const char* label, const AttackOutcome& out, bool expect_success) {
  // Timeline marker per attack verdict; the kKrxViolation instants the CPU
  // emitted during the attempt sit just before it in the same span. A halt
  // the harness observed without a CPU-level record (the exploit died in
  // the handler before its run returned) still gets a violation marker.
  telemetry::EmitEvent(telemetry::TraceEventType::kInstant, label,
                       out.success ? 1 : 0, out.leaks);
  if (out.kernel_killed) {
    telemetry::EmitEvent(telemetry::TraceEventType::kKrxViolation, label, 0, 0);
  }
  std::printf("  %-52s %s%s  [%s]\n", label,
              out.success ? "EXPLOITED" : "DEFEATED",
              out.kernel_killed ? " (kernel halted)" : "",
              out.success == expect_success ? "as the paper reports" : "UNEXPECTED");
  std::printf("      %s (leaks: %llu)\n", out.detail.c_str(),
              static_cast<unsigned long long>(out.leaks));
}

int Main(const std::string& trace_path) {
  const uint64_t seed = 0x5EC;
  std::printf("kR^X reproduction — security evaluation (paper §7.3)\n\n");

  if (!trace_path.empty()) {
    // The E8 trials alone retire thousands of CPU runs (one kCheckOutcome
    // record each); size the ring so the early scenarios' violation
    // instants survive to the export. Must precede the first emission.
    telemetry::SetDefaultRingCapacity(1u << 18);
    telemetry::SetMode(telemetry::kModeMetrics | telemetry::kModeTrace);
    telemetry::ClearAllRings();
    telemetry::SetThreadName("security_eval");
  }

  KernelSource src = MakeBenchSource(seed);
  auto vanilla = Build(src, ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  auto kaslr_only = Build(src, ProtectionConfig::DiversifyOnly(RaScheme::kNone, seed),
                          LayoutKind::kKrx);
  auto full_x = Build(src, ProtectionConfig::Full(false, RaScheme::kEncrypt, seed),
                      LayoutKind::kKrx);
  auto full_d = Build(src, ProtectionConfig::Full(false, RaScheme::kDecoy, seed),
                      LayoutKind::kKrx);
  if (!vanilla.ok() || !kaslr_only.ok() || !full_x.ok() || !full_d.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }

  // ---- Layout diffing (paper: "no function remained at its original
  // location ... no gadget remained at its original location"). ----
  {
    std::printf("[diversification diff]\n");
    size_t moved = 0, total = 0;
    const SymbolTable& vs = vanilla->image->symbols();
    const SymbolTable& ds = full_x->image->symbols();
    const PlacedSection* vt = vanilla->image->FindSection(".text");
    const PlacedSection* dt = full_x->image->FindSection(".text");
    for (size_t i = 0; i < vs.size(); ++i) {
      const Symbol& s = vs.at(static_cast<int32_t>(i));
      if (!s.defined || s.kind != SymbolKind::kFunction) {
        continue;
      }
      int32_t j = ds.Find(s.name);
      if (j < 0) {
        continue;
      }
      ++total;
      uint64_t voff = s.address - vt->vaddr;
      uint64_t doff = ds.at(j).address - dt->vaddr;
      if (voff != doff) {
        ++moved;
      }
    }
    std::printf("  functions relocated within .text: %zu / %zu\n\n", moved, total);
  }

  // ---- E0: the pre-kR^X baseline — ret2usr vs. SMEP (§1-§3). ----
  std::printf("[E0: ret2usr baseline (why attackers moved to code reuse)]\n");
  {
    KRX_TRACE_SPAN_SCOPED("E0.ret2usr.no_smep");
    ExploitLab target(&*vanilla);
    Report("ret2usr, no SMEP (legacy kernel)", Ret2UsrAttack(target, false), true);
  }
  {
    KRX_TRACE_SPAN_SCOPED("E0.ret2usr.smep");
    ExploitLab target(&*vanilla);
    Report("ret2usr, SMEP enabled (hardening assumption)", Ret2UsrAttack(target, true), false);
  }
  std::printf("\n");

  // ---- E6: direct ROP with precomputed addresses. ----
  std::printf("[E6: direct ROP (precomputed gadget addresses, CVE-2013-2094 style)]\n");
  {
    KRX_TRACE_SPAN_SCOPED("E6.direct_rop.vanilla");
    ExploitLab ref(&*vanilla), self(&*vanilla);
    Report("vanilla -> vanilla (exploit sanity check)", DirectRopAttack(ref, self), true);
  }
  {
    KRX_TRACE_SPAN_SCOPED("E6.direct_rop.krx");
    ExploitLab ref(&*vanilla), target(&*full_x);
    Report("vanilla addresses -> kR^X kernel", DirectRopAttack(ref, target), false);
  }

  // ---- E6b: coarse KASLR vs fine-grained KASLR (§1-§2). ----
  std::printf("\n[E6b: why coarse KASLR is not enough (one leaked pointer => slide)]\n");
  {
    ProtectionConfig coarse;
    coarse.coarse_kaslr = true;
    coarse.seed = seed;
    auto coarse_kernel = Build(src, coarse, LayoutKind::kVanilla);
    if (coarse_kernel.ok()) {
      KRX_TRACE_SPAN_SCOPED("E6b.kaslr_slide.coarse");
      ExploitLab ref(&*vanilla), target(&*coarse_kernel);
      Report("coarse KASLR (image slide only)", KaslrSlideBypassAttack(ref, target), true);
    }
  }
  {
    KRX_TRACE_SPAN_SCOPED("E6b.kaslr_slide.fine");
    ExploitLab ref(&*vanilla), target(&*full_x);
    Report("fine-grained KASLR (kR^X)", KaslrSlideBypassAttack(ref, target), false);
  }

  // ---- E7: direct JIT-ROP through the retrofitted debugfs leak. ----
  std::printf("\n[E7: direct JIT-ROP (arbitrary-read primitive, on-the-fly payload)]\n");
  {
    KRX_TRACE_SPAN_SCOPED("E7.direct_jitrop.kaslr_only");
    ExploitLab target(&*kaslr_only);
    Report("fine-grained KASLR only (R^X disabled)", DirectJitRopAttack(target), true);
  }
  {
    KRX_TRACE_SPAN_SCOPED("E7.direct_jitrop.krx");
    ExploitLab target(&*full_x);
    Report("full kR^X (R^X + fine-grained KASLR)", DirectJitRopAttack(target), false);
  }

  // ---- E9: the residual surface the paper admits (§7.3 closing). ----
  std::printf("\n[E9: data-only function-pointer attack (the surface kR^X leaves, §7.3)]\n");
  {
    KRX_TRACE_SPAN_SCOPED("E9.data_only_fnptr");
    ExploitLab target(&*full_x);
    Report("whole-function reuse via corrupted notifier_hook",
           DataOnlyFunctionPointerAttack(target), true);
    std::printf("  (the paper: kR^X \"effectively restricts the attacker to data-only type\n"
                "   of attacks on function pointers\" — arity-compatible whole functions.)\n");
  }

  // ---- E8: indirect JIT-ROP: harvesting return addresses from stacks. ----
  std::printf("\n[E8: indirect JIT-ROP (return-address harvesting), 256 trials each]\n");
  {
    KRX_TRACE_SPAN_SCOPED("E8.indirect_jitrop.unprotected");
    ExploitLab target(&*kaslr_only);
    IndirectJitRopResult r = IndirectJitRopAttack(target, 2, 256, seed);
    std::printf("  no RA protection: success rate %.3f (expected 1.0) — %s\n", r.success_rate,
                r.outcome.detail.c_str());
  }
  {
    KRX_TRACE_SPAN_SCOPED("E8.indirect_jitrop.encrypt");
    ExploitLab target(&*full_x);
    IndirectJitRopResult r = IndirectJitRopAttack(target, 2, 256, seed);
    std::printf("  encryption (X):   success rate %.3f (expected 0.0) — %s\n", r.success_rate,
                r.outcome.detail.c_str());
  }
  {
    KRX_TRACE_SPAN_SCOPED("E8.indirect_jitrop.decoy");
    ExploitLab target(&*full_d);
    std::printf("  decoys (D): Psucc = 1/2^n per the paper —\n");
    for (int n = 1; n <= 6; ++n) {
      IndirectJitRopResult r = IndirectJitRopAttack(target, n, 512, seed + n);
      std::printf("    n=%d gadgets: measured %.3f, expected %.3f (pairs harvested: %llu)\n", n,
                  r.success_rate, std::pow(0.5, n),
                  static_cast<unsigned long long>(r.pairs_harvested));
    }
    std::printf("  decoy tripwire raises #BP when stepped on: %s\n",
                DecoyTripwireFires(target) ? "yes" : "NO (unexpected)");
  }

  // ---- E17: gadget staleness across a live re-randomization epoch. An
  // attacker who disclosed gadget addresses before the epoch holds a dead
  // map afterwards — the JIT-ROP window closes at the epoch boundary. ----
  std::printf("\n[E17: gadget staleness after one live re-randomization epoch]\n");
  {
    KRX_TRACE_SPAN_SCOPED("E17.gadget_staleness");
    KernelImage& image = *full_x->image;
    const PlacedSection* text = image.FindSection(".text");
    std::vector<uint8_t> pre(text->size);
    KRX_CHECK(image.PeekBytes(text->vaddr, pre.data(), pre.size()).ok());
    std::vector<Gadget> gadgets = GadgetScanner().Scan(pre.data(), pre.size(), text->vaddr);

    RerandEngine engine(&*full_x);
    auto epoch = engine.RunEpoch(RerandTrigger::kDisclosure);
    if (!epoch.ok()) {
      std::fprintf(stderr, "epoch failed: %s\n", epoch.status().ToString().c_str());
      return 1;
    }
    std::vector<uint8_t> post(text->size);
    KRX_CHECK(image.PeekBytes(text->vaddr, post.data(), post.size()).ok());

    size_t stale = 0;
    for (const Gadget& g : gadgets) {
      size_t len = 0;
      for (const Instruction& inst : g.insts) len += EncodedSize(inst);
      const uint64_t off = g.address - text->vaddr;
      if (off + len > post.size() ||
          std::memcmp(pre.data() + off, post.data() + off, len) != 0) {
        ++stale;
      }
    }
    std::printf("  epoch: %llu functions moved, %llu xkeys rotated, stw %.2f ms\n",
                static_cast<unsigned long long>(epoch->functions_moved),
                static_cast<unsigned long long>(epoch->keys_rotated), epoch->stw_ms);
    std::printf("  disclosed gadget addresses stale after the epoch: %zu / %zu (%.1f%%)\n",
                stale, gadgets.size(),
                gadgets.empty() ? 0.0 : 100.0 * static_cast<double>(stale) /
                                            static_cast<double>(gadgets.size()));
    std::printf("  (mirrors the paper's layout diff: pre-epoch gadget knowledge no longer\n"
                "   decodes to the same code — continuous re-diversification, §8 outlook.)\n");
  }

  // ---- E21: transient read-check bypass (Spectre v1). Every architectural
  // check family stops the read from *retiring*; none stops it from issuing
  // on a mispredicted path. The spec-barrier / spec-mask axes must. ----
  std::printf("\n[E21: Spectre-v1 transient bypass of the range checks (src/spec)]\n");
  {
    KRX_TRACE_SPAN_SCOPED("E21.spectre_v1");
    struct SpecRow {
      const char* name;
      bool expect_leak;
    };
    const SpecRow rows[] = {
        {"sfi-o0", true},  {"sfi-o1", true},       {"sfi-o2", true},
        {"sfi-o3", true},  {"sfi-o4", true},       {"mpx", true},
        {"mpx-o4", true},  {"spec-barrier", false}, {"spec-mask", false},
    };
    for (const SpecRow& row : rows) {
      ProtectionConfig config;
      LayoutKind layout;
      KRX_CHECK(ParseConfigName(row.name, seed, &config, &layout));
      auto kernel = Build(src, config, layout);
      if (!kernel.ok()) {
        std::fprintf(stderr, "build %s failed: %s\n", row.name,
                     kernel.status().ToString().c_str());
        return 1;
      }
      SpectreV1Result r = SpectreV1Attack(*kernel);
      std::string label = std::string("Spectre v1 vs ") + row.name +
                          (row.expect_leak ? " (architectural checks only)"
                                           : " (speculation-hardened)");
      Report(label.c_str(), r.outcome, row.expect_leak);
      if (r.outcome.success == row.expect_leak) {
        // Acceptance bookkeeping: hardened configs must leak exactly zero.
        if (!row.expect_leak && r.bytes_leaked != 0) {
          std::fprintf(stderr, "  %s leaked %llu bytes — hardening failed\n",
                       row.name,
                       static_cast<unsigned long long>(r.bytes_leaked));
          return 1;
        }
      } else {
        std::fprintf(stderr, "  %s: unexpected outcome\n", row.name);
        return 1;
      }
    }
    std::printf("  (the wrong path reads code above _krx_edata; rollback keeps the\n"
                "   architectural contract intact while the cache line survives —\n"
                "   lfence kills the window, the mask clamps the address to 0.)\n");
  }

  if (!trace_path.empty()) {
    const std::string chrome = telemetry::ExportChromeTrace();
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << chrome;
    size_t records = 0, violations = 0;
    for (const auto& ring : telemetry::AllRings()) {
      for (const telemetry::TraceRecord& rec : ring->Snapshot()) {
        ++records;
        if (rec.type == telemetry::TraceEventType::kKrxViolation) {
          ++violations;
        }
      }
    }
    std::printf("\n[trace] wrote %s: %zu retained records, %zu krx_violation instant(s)\n",
                trace_path.c_str(), records, violations);
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) {
  std::string trace;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace = argv[++i];
    } else {
      std::fprintf(stderr, "usage: security_eval [--trace PATH]\n");
      return 2;
    }
  }
  return krx::Main(trace);
}
