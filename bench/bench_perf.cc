// Unified performance benchmark for the execution engine itself.
//
// Where the other benches measure *guest* overhead (protection columns vs.
// vanilla, in simulated cycles), this one measures the *host*: how fast the
// simulator executes a bench matrix with the predecoded block cache on vs.
// off, and how run time scales across worker threads. Three phases:
//
//   1. differential — the same matrix through all three engines
//      (single-step, block cache, superblock), single thread. Guest-visible
//      work (calls, retired instructions, deci-cycles, the rax checksum)
//      must be bit-identical; wall time should not be. The superblock leg
//      is gated: it must strictly beat the block-cache speedup measured in
//      the same run (the PR 3 floor was 2.33x; the target is >= 3.0x over
//      single-step).
//   2. scaling — the cached matrix at 1, 2 and 4 threads over shared
//      compiled kernels (the kernel cache compiles each column once).
//   3. telemetry — the observability overhead gate: the cached matrix with
//      telemetry runtime-disabled vs. metrics-enabled (min-of-N wall each,
//      enabled must be within 1%), then one run under full event tracing
//      whose guest state must stay identical and whose ring contents are
//      exported as a Chrome trace (--trace PATH).
//   4. report — human summary on stdout and, with --json PATH, a
//      BENCH_perf.json with per-task rows and the phase summaries.
//
// The cache speedup (>= 2x) and near-linear scaling to 4 threads are
// acceptance numbers; scaling is only *enforceable* when the machine
// actually has that many cores, so the tool reports hardware_concurrency
// alongside and never fails on scaling shortfalls of an oversubscribed box.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/base/status.h"
#include "src/bench_runner/bench_runner.h"
#include "src/plugin/pipeline.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

struct Args {
  int threads = 4;
  uint64_t seed = 0xB0F;
  int repeat = 0;  // 0 = phase default
  bool quick = false;
  std::string json_path;
  std::string trace_path;  // chrome trace of the fully-traced run
};

uint64_t TotalInstructions(const std::vector<TaskResult>& results) {
  uint64_t n = 0;
  for (const TaskResult& r : results) n += r.instructions;
  return n;
}

// True when every guest-visible field of the two runs matches.
bool Identical(const std::vector<TaskResult>& a, const std::vector<TaskResult>& b,
               std::string* why) {
  if (a.size() != b.size()) {
    *why = "result counts differ";
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const TaskResult& x = a[i];
    const TaskResult& y = b[i];
    if (!x.ok || !y.ok) {
      *why = x.name + ": task failed (" + (!x.ok ? x.error : y.error) + ")";
      return false;
    }
    if (x.calls != y.calls || x.instructions != y.instructions ||
        x.deci_cycles != y.deci_cycles || x.rax_checksum != y.rax_checksum) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s: calls %llu/%llu insts %llu/%llu deci %llu/%llu rax %016llx/%016llx",
                    x.name.c_str(), (unsigned long long)x.calls, (unsigned long long)y.calls,
                    (unsigned long long)x.instructions, (unsigned long long)y.instructions,
                    (unsigned long long)x.deci_cycles, (unsigned long long)y.deci_cycles,
                    (unsigned long long)x.rax_checksum, (unsigned long long)y.rax_checksum);
      *why = buf;
      return false;
    }
  }
  return true;
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
}

void AppendTaskJson(const TaskResult& r, std::string* out) {
  char buf[512];
  std::string name, config, error;
  JsonEscape(r.name, &name);
  JsonEscape(r.config_name, &config);
  JsonEscape(r.error, &error);
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"%s\", \"workload\": \"%s\", \"config\": \"%s\", "
                "\"ok\": %s, \"error\": \"%s\", \"calls\": %llu, \"instructions\": %llu, "
                "\"deci_cycles\": %llu, \"rax_checksum\": \"%016llx\", \"wall_ms\": %.3f, "
                "\"cache_hit_rate\": %.4f, \"replayed_insts\": %llu, \"decoded_insts\": %llu}",
                name.c_str(), WorkloadKindName(r.workload), config.c_str(),
                r.ok ? "true" : "false", error.c_str(), (unsigned long long)r.calls,
                (unsigned long long)r.instructions, (unsigned long long)r.deci_cycles,
                (unsigned long long)r.rax_checksum, r.wall_ms, r.cache_hit_rate,
                (unsigned long long)r.replayed_insts, (unsigned long long)r.decoded_insts);
  *out += buf;
}

int Main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--repeat" && i + 1 < argc) {
      args.repeat = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_perf [--quick] [--threads N] [--seed S] [--repeat R] "
                   "[--json PATH] [--trace PATH]\n");
      return 2;
    }
  }
  if (args.threads < 1) args.threads = 1;

  const std::vector<std::string> configs =
      args.quick ? std::vector<std::string>{"vanilla", "sfi-o3", "sfi-o4"}
                 : std::vector<std::string>{"vanilla", "sfi-o3", "sfi-o4", "mpx", "x", "d"};
  const int lmbench_rows = args.quick ? 4 : 0;  // 0 = all 23 rows
  // Enough outer repetitions that decode cost is fully amortized — the
  // regime the block cache exists for (hit rates > 95%).
  const int repeat = args.repeat > 0 ? args.repeat : (args.quick ? 12 : 8);
  const std::vector<BenchTask> tasks =
      MakeBenchMatrix(configs, lmbench_rows, repeat, /*with_phoronix=*/!args.quick);
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("kR^X reproduction — engine performance (block cache + parallel driver)\n");
  std::printf("matrix: %zu tasks over %zu configs, repeat=%d, seed=0x%llx, hw threads=%u\n\n",
              tasks.size(), configs.size(), repeat, (unsigned long long)args.seed, hw);

  KernelCache cache(MakeBenchSourceFactory(args.seed));

  // Phase 1: cached-vs-uncached differential, single thread. Each engine
  // leg runs kTimingRuns times and its wall time is the sum of *per-task*
  // minima (noise only ever inflates a measurement, so the min is the
  // robust estimator — phase 3's trick, applied per task because a
  // scheduler hiccup lands in one task of one run, and a whole-leg min
  // would need a completely clean run to dodge it): the quick matrix's
  // legs are a few ms each, short enough that one hiccup on a single-run
  // measurement could flip the superblock-vs-cache comparison below.
  // Guest-state identity is checked on the retained first run of each
  // leg; reruns are timing-only (determinism across runs is the tier-1
  // suites' job).
  constexpr int kTimingRuns = 3;
  const auto run_leg = [&](const BenchRunnerOptions& opts, std::vector<TaskResult>* results,
                           double* best_ms) {
    *results = BenchRunner(opts, &cache).Run(tasks);
    std::vector<double> per_task(results->size());
    for (size_t t = 0; t < results->size(); ++t) {
      per_task[t] = (*results)[t].wall_ms;
    }
    for (int i = 1; i < kTimingRuns; ++i) {
      const std::vector<TaskResult> rerun = BenchRunner(opts, &cache).Run(tasks);
      for (size_t t = 0; t < rerun.size(); ++t) {
        per_task[t] = std::min(per_task[t], rerun[t].wall_ms);
      }
    }
    *best_ms = 0;
    for (const double ms : per_task) *best_ms += ms;
  };

  BenchRunnerOptions uncached_opts;
  uncached_opts.threads = 1;
  uncached_opts.seed = args.seed;
  uncached_opts.use_block_cache = false;
  std::vector<TaskResult> uncached;
  double uncached_ms = 0;
  run_leg(uncached_opts, &uncached, &uncached_ms);

  BenchRunnerOptions cached_opts = uncached_opts;
  cached_opts.use_block_cache = true;
  std::vector<TaskResult> cached;
  double cached_ms = 0;
  run_leg(cached_opts, &cached, &cached_ms);

  BenchRunnerOptions sb_opts = uncached_opts;
  sb_opts.engine = ExecEngine::kSuperblock;
  std::vector<TaskResult> superblocked;
  double sb_ms = 0;
  run_leg(sb_opts, &superblocked, &sb_ms);

  std::string why;
  const bool identical = Identical(uncached, cached, &why);
  const double speedup = cached_ms > 0 ? uncached_ms / cached_ms : 0;
  double hit_rate = 0;
  for (const TaskResult& r : cached) hit_rate += r.cache_hit_rate;
  if (!cached.empty()) hit_rate /= static_cast<double>(cached.size());

  // Superblock leg: same matrix, translate-and-chain engine. The gate is
  // relative (beat the block cache measured in this very run, i.e. the
  // 2.33x floor PR 3 recorded) so host-load noise cancels out of the
  // comparison; the absolute >= 3.0x target is reported alongside.
  std::string sb_why;
  const bool sb_identical = Identical(uncached, superblocked, &sb_why);
  const double sb_speedup = sb_ms > 0 ? uncached_ms / sb_ms : 0;
  constexpr double kBlockCacheFloor = 2.33;  // PR 3's recorded speedup
  constexpr double kSuperblockTarget = 3.0;
  uint64_t sb_chains = 0, sb_entries = 0, sb_breaks = 0;
  double sb_fast_share = 0, sb_tlb_rate = 0;
  for (const TaskResult& r : superblocked) {
    sb_chains += r.sb_chains_built;
    sb_entries += r.sb_entries;
    sb_breaks += r.sb_chain_breaks;
    sb_fast_share += r.sb_fastpath_share;
    sb_tlb_rate += r.sb_tlb_hit_rate;
  }
  if (!superblocked.empty()) {
    sb_fast_share /= static_cast<double>(superblocked.size());
    sb_tlb_rate /= static_cast<double>(superblocked.size());
  }
  const bool sb_ok = sb_identical && sb_speedup > speedup && sb_speedup > kBlockCacheFloor;

  std::printf("phase 1 — differential (1 thread, three engines)\n");
  std::printf("  single-step: %10.1f ms   %llu guest instructions\n", uncached_ms,
              (unsigned long long)TotalInstructions(uncached));
  std::printf("  block cache: %10.1f ms   mean hit rate %.1f%%   speedup %.2fx\n", cached_ms,
              100.0 * hit_rate, speedup);
  std::printf("  superblock:  %10.1f ms   speedup %.2fx   guest state %s\n", sb_ms, sb_speedup,
              sb_identical ? "IDENTICAL" : "DIVERGED");
  std::printf("  sb chains: %llu built, %llu entries, %llu breaks, fastpath share %.1f%%, "
              "inline-TLB hit rate %.1f%%\n",
              (unsigned long long)sb_chains, (unsigned long long)sb_entries,
              (unsigned long long)sb_breaks, 100.0 * sb_fast_share, 100.0 * sb_tlb_rate);
  std::printf("  sb gate: beat block cache (%.2fx > %.2fx) %s; floor %.2fx %s; "
              "target >= %.1fx %s\n",
              sb_speedup, speedup, sb_speedup > speedup ? "OK" : "FAIL", kBlockCacheFloor,
              sb_speedup > kBlockCacheFloor ? "OK" : "FAIL", kSuperblockTarget,
              sb_speedup >= kSuperblockTarget ? "OK" : "(short on this machine)");
  if (!identical) {
    std::printf("  FAIL: %s\n", why.c_str());
  }
  if (!sb_identical) {
    std::printf("  FAIL (superblock): %s\n", sb_why.c_str());
  }

  // Phase 2: thread scaling of the cached configuration. Kernels are warm
  // in the cache by now, so this isolates execution scaling from compiles.
  std::vector<int> thread_counts;
  for (int t = 1; t <= args.threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.empty() || thread_counts.back() != args.threads) {
    thread_counts.push_back(args.threads);
  }
  std::printf("\nphase 2 — scaling (cached)\n");
  std::vector<std::pair<int, double>> scaling;
  std::vector<TaskResult> widest;
  double base_ms = 0;
  for (int t : thread_counts) {
    BenchRunnerOptions opts = cached_opts;
    opts.threads = t;
    BenchRunner runner(opts, &cache);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<TaskResult> results = runner.Run(tasks);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double, std::milli>(t1 - t0).count();
    scaling.emplace_back(t, wall);
    if (t == 1) base_ms = wall;
    std::printf("  %d thread%s: %10.1f ms   speedup vs 1: %.2fx%s\n", t, t == 1 ? " " : "s",
                wall, base_ms > 0 ? base_ms / wall : 0,
                (hw != 0 && static_cast<unsigned>(t) > hw) ? "   (oversubscribed)" : "");
    widest = std::move(results);
  }

  // Phase 3: telemetry overhead gate. All kernels are warm, so the cached
  // single-thread matrix isolates execution cost. With telemetry runtime-
  // disabled every instrumented site is one relaxed load + predicted
  // branch; enabling metrics must stay within 1% of that (the counters
  // fire per run, never per instruction). The quick matrix is ~150 ms per
  // run, so host-load noise dwarfs a sub-1% true effect; the estimator is
  // the median of paired back-to-back ratios — the two legs of a pair
  // share load conditions (drift cancels in the ratio, and alternating
  // leg order cancels warmth bias), and the median kills outlier pairs.
  // On a miss we re-measure once with more pairs before failing.
  const uint32_t entry_mode = telemetry::Mode();
  auto one_wall = [&] {
    BenchRunner runner(cached_opts, &cache);
    const auto m0 = std::chrono::steady_clock::now();
    std::vector<TaskResult> r = runner.Run(tasks);
    const auto m1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(m1 - m0).count();
  };
  auto measure_overhead = [&](int pairs, double* disabled_ms, double* metrics_ms) {
    std::vector<double> ratios;
    double best_off = 1e18, best_on = 1e18;
    for (int i = 0; i < pairs; ++i) {
      double wall[2] = {0, 0};
      for (int leg = 0; leg < 2; ++leg) {
        const bool with_metrics = (i + leg) % 2 != 0;
        telemetry::SetMode(with_metrics ? telemetry::kModeMetrics : 0);
        const double w = one_wall();
        wall[with_metrics ? 1 : 0] = w;
        double& best = with_metrics ? best_on : best_off;
        best = std::min(best, w);
      }
      ratios.push_back(wall[0] > 0 ? wall[1] / wall[0] : 1.0);
    }
    std::sort(ratios.begin(), ratios.end());
    *disabled_ms = best_off;
    *metrics_ms = best_on;
    return 100.0 * (ratios[ratios.size() / 2] - 1.0);  // odd `pairs`
  };
  double disabled_ms = 0, metrics_ms = 0;
  double overhead_pct = measure_overhead(5, &disabled_ms, &metrics_ms);
  if (overhead_pct > 1.0) {
    overhead_pct = measure_overhead(9, &disabled_ms, &metrics_ms);
  }
  const bool overhead_ok = overhead_pct <= 1.0;

  // One run under full tracing: must complete with guest state identical
  // to the untraced cached run, and its rings must export a parseable
  // Chrome trace.
  telemetry::SetMode(telemetry::kModeMetrics | telemetry::kModeTrace);
  telemetry::ClearAllRings();
  std::vector<TaskResult> traced = BenchRunner(cached_opts, &cache).Run(tasks);
  telemetry::SetMode(entry_mode != 0 ? entry_mode : telemetry::kModeMetrics);
  std::string traced_why;
  const bool traced_identical = Identical(cached, traced, &traced_why);
  const std::string chrome = telemetry::ExportChromeTrace();

  std::printf("\nphase 3 — telemetry overhead (cached, 1 thread; ms are min-of-N,\n");
  std::printf("          the verdict is the median of paired A/B ratios)\n");
  std::printf("  runtime-disabled: %10.1f ms\n", disabled_ms);
  std::printf("  metrics enabled:  %10.1f ms   overhead %+.2f%% (gate: <= 1%%) %s\n",
              metrics_ms, overhead_pct, overhead_ok ? "OK" : "FAIL");
  std::printf("  full tracing:     guest state %s, %zu-byte chrome trace\n",
              traced_identical ? "IDENTICAL" : "DIVERGED", chrome.size());
  if (!traced_identical) {
    std::printf("  FAIL: %s\n", traced_why.c_str());
  }
  if (!args.trace_path.empty()) {
    std::ofstream out(args.trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.trace_path.c_str());
      return 1;
    }
    out << chrome;
    std::printf("  wrote %s\n", args.trace_path.c_str());
  }

  const KernelCache::Stats kstats = cache.stats();
  std::printf("\nkernel cache: %llu shared builds, %llu cache hits, %llu private builds\n",
              (unsigned long long)kstats.shared_mode.compiles,
              (unsigned long long)kstats.shared_mode.hits,
              (unsigned long long)kstats.private_mode.compiles);

  // Static check census: what O4's cross-block elision + loop hoisting
  // removes from the image relative to O3, over the same bench source. The
  // matrix above already proves the two columns produce identical
  // guest-visible results; this quantifies the static reduction.
  SfiStats census_o3, census_o4;
  {
    KernelSource src = MakeBenchSource(args.seed);
    auto o3 = CompileKernel(src, {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
    auto o4 = CompileKernel(std::move(src),
                            {ProtectionConfig::SfiOnly(SfiLevel::kO4), LayoutKind::kKrx});
    KRX_CHECK(o3.ok() && o4.ok());
    census_o3 = o3->stats.sfi;
    census_o4 = o4->stats.sfi;
  }
  const double census_delta_pct =
      census_o3.checks_emitted > 0
          ? 100.0 * (1.0 - static_cast<double>(census_o4.checks_emitted) /
                               static_cast<double>(census_o3.checks_emitted))
          : 0.0;
  std::printf("check census: O3 emits %llu checks, O4 emits %llu (%llu hoisted) — "
              "%.1f%% fewer static checks\n",
              (unsigned long long)census_o3.checks_emitted,
              (unsigned long long)census_o4.checks_emitted,
              (unsigned long long)census_o4.checks_hoisted, census_delta_pct);

  bool all_ok = identical && sb_ok && overhead_ok && traced_identical;
  for (const TaskResult& r : widest) {
    if (!r.ok) {
      std::printf("task failed: %s: %s\n", r.name.c_str(), r.error.c_str());
      all_ok = false;
    }
  }

  if (!args.json_path.empty()) {
    std::string json = "{\n";
    json += "  \"meta\": " +
            bench_json::MetaBlock("bench_perf", args.seed,
                                  args.quick ? "vanilla..sfi-o4 (quick)" : "vanilla..d",
                                  "krx") +
            ",\n";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"matrix\": {\"tasks\": %zu, \"configs\": %zu, \"repeat\": %d, "
                  "\"seed\": \"0x%llx\", \"quick\": %s},\n"
                  "  \"hardware_threads\": %u,\n"
                  "  \"differential\": {\"identical\": %s, \"uncached_wall_ms\": %.3f, "
                  "\"cached_wall_ms\": %.3f, \"speedup\": %.3f, \"mean_hit_rate\": %.4f},\n",
                  tasks.size(), configs.size(), repeat, (unsigned long long)args.seed,
                  args.quick ? "true" : "false", hw, identical ? "true" : "false", uncached_ms,
                  cached_ms, speedup, hit_rate);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"superblock\": {\"identical\": %s, \"wall_ms\": %.3f, \"speedup\": %.3f, "
                  "\"block_cache_floor\": %.2f, \"beats_floor\": %s, \"beats_block_cache\": %s, "
                  "\"sb.chains_built\": %llu, \"sb.entries\": %llu, \"sb.chain_breaks\": %llu, "
                  "\"sb.fastpath_share\": %.4f, \"sb.tlb_hit_rate\": %.4f},\n",
                  sb_identical ? "true" : "false", sb_ms, sb_speedup, kBlockCacheFloor,
                  sb_speedup > kBlockCacheFloor ? "true" : "false",
                  sb_speedup > speedup ? "true" : "false", (unsigned long long)sb_chains,
                  (unsigned long long)sb_entries, (unsigned long long)sb_breaks, sb_fast_share,
                  sb_tlb_rate);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"telemetry\": {\"disabled_wall_ms\": %.3f, \"metrics_wall_ms\": %.3f, "
                  "\"overhead_pct\": %.3f, \"overhead_ok\": %s, \"traced_identical\": %s, "
                  "\"chrome_trace_bytes\": %zu},\n",
                  disabled_ms, metrics_ms, overhead_pct, overhead_ok ? "true" : "false",
                  traced_identical ? "true" : "false", chrome.size());
    json += buf;
    json += "  \"scaling\": [";
    for (size_t i = 0; i < scaling.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s{\"threads\": %d, \"wall_ms\": %.3f, \"speedup\": %.3f}",
                    i ? ", " : "", scaling[i].first, scaling[i].second,
                    scaling[i].second > 0 ? base_ms / scaling[i].second : 0);
      json += buf;
    }
    json += "],\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"kernel_cache\": {\"compiles\": %llu, \"hits\": %llu, "
                  "\"private_compiles\": %llu},\n",
                  (unsigned long long)kstats.shared_mode.compiles,
                  (unsigned long long)kstats.shared_mode.hits,
                  (unsigned long long)kstats.private_mode.compiles);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"check_census\": {\"o3_emitted\": %llu, \"o3_elided\": %llu, "
                  "\"o4_emitted\": %llu, \"o4_elided\": %llu, \"o4_hoisted\": %llu, "
                  "\"o4_reduction_pct\": %.2f},\n",
                  (unsigned long long)census_o3.checks_emitted,
                  (unsigned long long)census_o3.checks_coalesced,
                  (unsigned long long)census_o4.checks_emitted,
                  (unsigned long long)census_o4.checks_coalesced,
                  (unsigned long long)census_o4.checks_hoisted, census_delta_pct);
    json += buf;
    json += "  \"tasks\": [\n";
    for (size_t i = 0; i < widest.size(); ++i) {
      AppendTaskJson(widest[i], &json);
      json += (i + 1 < widest.size()) ? ",\n" : "\n";
    }
    json += "  ],\n";
    json += "  \"metrics\": " + bench_json::MetricsBlock() + "\n}\n";
    std::ofstream out(args.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    out << json;
    std::printf("wrote %s\n", args.json_path.c_str());
  }

  if (!all_ok) {
    std::printf("\nRESULT: FAIL\n");
    return 1;
  }
  std::printf("\nRESULT: OK (cache speedup %.2fx, superblock speedup %.2fx%s)\n", speedup,
              sb_speedup,
              sb_speedup >= kSuperblockTarget ? "" : " — below the 3x target on this machine");
  return 0;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Main(argc, argv); }
