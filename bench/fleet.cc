// Multi-tenant fleet bench: N tenants x M worker Cpus serving Poisson
// arrival-rate traffic over per-tenant CoW-diversified images.
//
//   1. admit   — N tenants over a small config matrix; same-config tenants
//                share one pristine build, each gets a re-linked image and
//                a private diversification epoch. Reports the CoW speedup
//                (materialize vs full compile) and the memory split.
//   2. traffic — open-loop Poisson arrivals across the fleet; requests are
//                (tenant, worker) workload iterations (lmbench / VFS / IPC
//                round-robin). Reports p50/p99 sojourn latency (queue wait
//                + service) and throughput.
//   3. scaling — the same closed-loop request batch on 1 thread vs
//                hardware_concurrency threads; the efficiency gate is
//                asserted only when the host has >1 hardware thread (the
//                skip is recorded in the artifact).
//
// Writes the BENCH_fleet.json artifact (stdout keeps the human summary).
// Exits non-zero on any failed request, a dedup ratio below 0.5, or a
// failed scaling gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/base/rng.h"
#include "src/fleet/fleet.h"
#include "src/fleet/kernel_cache.h"
#include "src/fleet/tenant.h"
#include "src/telemetry/metrics.h"
#include "src/workload/harness.h"
#include "src/workload/ipc.h"
#include "src/workload/vfs.h"

namespace krx {
namespace {

struct Args {
  int tenants = 16;
  int workers = 2;            // worker Cpus per tenant
  int requests = 12;          // traffic requests per tenant
  double rate_rps = 400.0;    // offered Poisson arrival rate, requests/s
  uint64_t seed = 0xF1EE7;
  std::string json_path = "BENCH_fleet.json";
  bool quick = false;
};

struct RequestRecord {
  double arrival_ms = 0;   // scheduled arrival, relative to traffic start
  int tenant = 0;
  int worker = 0;
  double latency_ms = 0;   // completion - arrival (sojourn)
  bool ok = false;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Uniform (0, 1] from the top 53 bits; never 0, so log() is safe.
double UnitUniform(Rng& rng) {
  const double u = static_cast<double>(rng.Next() >> 11) * (1.0 / 9007199254740992.0);
  return u > 0 ? u : 1.0 / 9007199254740992.0;
}

// The bench's tenant matrix: two diversified configs (so the 16-tenant
// default forms 2 pristine groups -> dedup ratio 0.875) and a round-robin
// of the three workload families.
TenantSpec MakeTenantSpec(int i, uint64_t seed) {
  static const char* kConfigs[] = {"sfi+x", "x"};
  TenantSpec spec;
  spec.tenant_id = i;
  spec.config_name = kConfigs[i % 2];
  spec.seed = seed + 0x1000 + static_cast<uint64_t>(i);
  switch (i % 3) {
    case 0:
      spec.workload = WorkloadKind::kLmbench;
      spec.op_symbol = "sys_read_write";
      break;
    case 1:
      spec.workload = WorkloadKind::kVfs;
      break;
    default:
      spec.workload = WorkloadKind::kIpc;
      break;
  }
  return spec;
}

// Closed-loop batch: every (tenant, request) pair once, on `threads`
// threads. Returns wall ms; used by the scaling phase.
double RunClosedLoop(TenantFleet& fleet, int tenants, int requests_per_tenant, int threads,
                     bool* all_ok) {
  std::vector<std::pair<int, int>> batch;  // (tenant, request ordinal)
  for (int t = 0; t < tenants; ++t) {
    for (int r = 0; r < requests_per_tenant; ++r) {
      batch.emplace_back(t, r);
    }
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> ok{true};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < batch.size(); i = next.fetch_add(1)) {
        auto r = fleet.Serve(batch[i].first, batch[i].second);
        if (!r.ok()) {
          ok.store(false);
        }
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (all_ok != nullptr) {
    *all_ok = ok.load();
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int Main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tenants" && i + 1 < argc) {
      args.tenants = std::atoi(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      args.workers = std::atoi(argv[++i]);
    } else if (arg == "--requests" && i + 1 < argc) {
      args.requests = std::atoi(argv[++i]);
    } else if (arg == "--rate" && i + 1 < argc) {
      args.rate_rps = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg == "--quick") {
      args.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: fleet [--quick] [--tenants N] [--workers M] [--requests R]\n"
                   "             [--rate RPS] [--seed S] [--json PATH]\n");
      return 2;
    }
  }
  if (args.quick) {
    args.tenants = std::min(args.tenants, 8);
    args.requests = std::min(args.requests, 6);
  }
  if (args.tenants < 1) args.tenants = 1;
  if (args.workers < 1) args.workers = 1;
  if (args.requests < 1) args.requests = 1;

  telemetry::SetMode(telemetry::Mode() | telemetry::kModeMetrics);
  telemetry::MetricsRegistry::Global().Reset();

  KernelCache cache([seed = args.seed] {
    KernelSource src = MakeBenchSource(seed);
    AddVfs(&src, DefaultVfsImage());
    AddIpc(&src);
    return src;
  });
  FleetOptions fopts;
  fopts.base_seed = args.seed;
  fopts.workers_per_tenant = args.workers;
  // 32MB/tenant keeps a 16-tenant fleet around 0.5GB of guest memory; the
  // bench source needs well under that.
  fopts.phys_bytes = 32ULL << 20;
  TenantFleet fleet(&cache, fopts);

  // ---- Phase 1: admit. ----
  std::printf("fleet: admitting %d tenants x %d workers (seed 0x%llx)\n", args.tenants,
              args.workers, (unsigned long long)args.seed);
  double first_admit_ms = 0;   // includes the group's base compile
  double repeat_admit_ms = 0;  // pure CoW materializations
  int repeat_admits = 0;
  const auto admit_t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < args.tenants; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto tenant = fleet.Admit(MakeTenantSpec(i, args.seed));
    const auto t1 = std::chrono::steady_clock::now();
    if (!tenant.ok()) {
      std::fprintf(stderr, "admit %d failed: %s\n", i, tenant.status().ToString().c_str());
      return 1;
    }
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i < 2) {
      first_admit_ms += ms;  // the two pristine groups' base compiles
    } else {
      repeat_admit_ms += ms;
      ++repeat_admits;
    }
  }
  const double admit_total_ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - admit_t0)
                                    .count();
  const double avg_first_ms = first_admit_ms / std::min(2, args.tenants);
  const double avg_repeat_ms = repeat_admits > 0 ? repeat_admit_ms / repeat_admits : 0;
  const double cow_speedup = avg_repeat_ms > 0 ? avg_first_ms / avg_repeat_ms : 0;

  const TenantFleet::MemoryReport mem = fleet.MemoryUsage();
  std::printf("  %d pristine group(s), dedup ratio %.3f\n", mem.pristine_groups,
              mem.dedup_ratio);
  std::printf("  memory: %.2f MB shared + %.2f MB images = %.2f MB (naive: %.2f MB, "
              "%.2f MB/tenant)\n",
              mem.shared_bytes / 1048576.0, mem.image_bytes / 1048576.0,
              mem.cow_total_bytes / 1048576.0, mem.naive_total_bytes / 1048576.0,
              mem.avg_bytes_per_tenant / 1048576.0);
  std::printf("  admit: %.1f ms total; first-in-group %.1f ms, CoW materialize %.1f ms "
              "(%.1fx faster)\n",
              admit_total_ms, avg_first_ms, avg_repeat_ms, cow_speedup);

  // ---- Phase 2: Poisson traffic. ----
  const int total_requests = args.tenants * args.requests;
  std::vector<RequestRecord> schedule(static_cast<size_t>(total_requests));
  {
    Rng rng(args.seed ^ 0x901550);
    double clock_ms = 0;
    for (int i = 0; i < total_requests; ++i) {
      clock_ms += -std::log(UnitUniform(rng)) * 1000.0 / args.rate_rps;
      schedule[static_cast<size_t>(i)].arrival_ms = clock_ms;
      schedule[static_cast<size_t>(i)].tenant = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(args.tenants)));
      schedule[static_cast<size_t>(i)].worker = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(args.workers)));
    }
  }
  const int traffic_threads =
      std::max(1, std::min(static_cast<int>(std::thread::hardware_concurrency()),
                           args.tenants * args.workers));
  std::printf("fleet: %d Poisson requests at %.0f req/s on %d threads\n", total_requests,
              args.rate_rps, traffic_threads);
  std::atomic<size_t> next{0};
  std::atomic<int> failures{0};
  const auto traffic_t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(traffic_threads));
    for (int w = 0; w < traffic_threads; ++w) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < schedule.size(); i = next.fetch_add(1)) {
          RequestRecord& req = schedule[i];
          // Open loop: don't start before the scheduled arrival.
          const auto arrival =
              traffic_t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                               std::chrono::duration<double, std::milli>(req.arrival_ms));
          std::this_thread::sleep_until(arrival);
          auto r = fleet.Serve(req.tenant, req.worker);
          const auto done = std::chrono::steady_clock::now();
          req.latency_ms = std::chrono::duration<double, std::milli>(done - arrival).count();
          req.ok = r.ok();
          if (!r.ok()) {
            failures.fetch_add(1);
            std::fprintf(stderr, "request failed (tenant %d): %s\n", req.tenant,
                         r.status().ToString().c_str());
          }
        }
      });
    }
    for (std::thread& th : pool) {
      th.join();
    }
  }
  const double traffic_wall_ms = std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() - traffic_t0)
                                     .count();
  std::vector<double> latencies;
  latencies.reserve(schedule.size());
  for (const RequestRecord& req : schedule) {
    latencies.push_back(req.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  double mean = 0;
  for (double l : latencies) {
    mean += l;
  }
  mean = latencies.empty() ? 0 : mean / static_cast<double>(latencies.size());
  const double throughput =
      traffic_wall_ms > 0 ? 1000.0 * static_cast<double>(total_requests) / traffic_wall_ms : 0;
  std::printf("  latency: p50 %.2f ms, p99 %.2f ms, mean %.2f ms; %.0f req/s served; "
              "%d failure(s)\n",
              p50, p99, mean, throughput, failures.load());

  // ---- Phase 3: thread scaling. ----
  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  const int scale_threads = std::max(1, std::min(hw_threads, args.tenants * args.workers));
  bool scaling_skipped = (hw_threads <= 1);
  bool scale_ok1 = true, scale_okN = true;
  double t1_ms = 0, tN_ms = 0, speedup = 0, efficiency = 0;
  std::string scaling_gate = "skipped (1 hardware thread)";
  bool scaling_gate_failed = false;
  if (!scaling_skipped) {
    const int scale_requests = std::max(2, args.requests / 2);
    t1_ms = RunClosedLoop(fleet, args.tenants, scale_requests, 1, &scale_ok1);
    tN_ms = RunClosedLoop(fleet, args.tenants, scale_requests, scale_threads, &scale_okN);
    speedup = tN_ms > 0 ? t1_ms / tN_ms : 0;
    efficiency = speedup / scale_threads;
    // Lenient gate: tenants are independent images, so more threads must
    // genuinely help — but simulated guests are memory-bound, so demand
    // measurable speedup rather than linear scaling.
    const bool pass = speedup >= 1.2 && scale_ok1 && scale_okN;
    scaling_gate = pass ? "pass" : "fail";
    scaling_gate_failed = !pass;
    std::printf("fleet: scaling %d -> %d threads: %.1f ms -> %.1f ms "
                "(%.2fx speedup, %.0f%% efficiency) [%s]\n",
                1, scale_threads, t1_ms, tN_ms, speedup, 100 * efficiency,
                scaling_gate.c_str());
  } else {
    std::printf("fleet: scaling gate skipped (1 hardware thread)\n");
  }

  // ---- Artifact. ----
  const KernelCache::Stats kstats = cache.stats();
  std::string json = "{\n  \"meta\": " +
                     bench_json::MetaBlock("fleet", args.seed, "sfi+x,x", "krx") + ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"fleet\": {\"tenants\": %d, \"workers_per_tenant\": %d, "
                "\"pristine_groups\": %d, \"dedup_ratio\": %.4f, \"shared_bytes\": %llu, "
                "\"image_bytes\": %llu, \"cow_total_bytes\": %llu, "
                "\"naive_total_bytes\": %llu, \"bytes_per_tenant\": %.0f},\n",
                mem.tenants, args.workers, mem.pristine_groups, mem.dedup_ratio,
                (unsigned long long)mem.shared_bytes, (unsigned long long)mem.image_bytes,
                (unsigned long long)mem.cow_total_bytes,
                (unsigned long long)mem.naive_total_bytes, mem.avg_bytes_per_tenant);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"admit\": {\"total_ms\": %.3f, \"first_in_group_ms\": %.3f, "
                "\"cow_materialize_ms\": %.3f, \"cow_speedup\": %.2f},\n",
                admit_total_ms, avg_first_ms, avg_repeat_ms, cow_speedup);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"traffic\": {\"requests\": %d, \"failures\": %d, \"offered_rps\": %.1f, "
                "\"served_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"mean_ms\": %.3f},\n",
                total_requests, failures.load(), args.rate_rps, throughput, p50, p99, mean);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"scaling\": {\"hardware_threads\": %d, \"threads\": %d, "
                "\"t1_ms\": %.3f, \"tN_ms\": %.3f, \"speedup\": %.3f, "
                "\"efficiency\": %.3f, \"gate\": \"%s\"},\n",
                hw_threads, scaling_skipped ? 1 : scale_threads, t1_ms, tN_ms, speedup,
                efficiency, scaling_gate.c_str());
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"kernel_cache\": {\"shared_compiles\": %llu, \"shared_hits\": %llu, "
                "\"inflight_dedup\": %llu, \"private_compiles\": %llu},\n",
                (unsigned long long)kstats.shared_mode.compiles,
                (unsigned long long)kstats.shared_mode.hits,
                (unsigned long long)kstats.shared_mode.inflight_dedup,
                (unsigned long long)kstats.private_mode.compiles);
  json += buf;
  json += "  \"metrics\": " + bench_json::MetricsBlock("  ") + "\n}\n";
  std::ofstream out(args.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", args.json_path.c_str());

  int rc = 0;
  if (failures.load() > 0) {
    std::fprintf(stderr, "FAIL: %d request(s) failed\n", failures.load());
    rc = 1;
  }
  if (mem.dedup_ratio < 0.5) {
    std::fprintf(stderr, "FAIL: dedup ratio %.3f below the 0.5 floor\n", mem.dedup_ratio);
    rc = 1;
  }
  if (scaling_gate_failed) {
    std::fprintf(stderr, "FAIL: thread-scaling gate (%.2fx speedup on %d threads)\n", speedup,
                 scale_threads);
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Main(argc, argv); }
