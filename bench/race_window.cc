// §5.3 "Race Hazards", quantified: both return-address schemes obfuscate
// the address *after* it has been pushed in cleartext, leaving a window of
// 1-3 instructions per call during which an infinitely fast attacker
// probing the stack could observe a real return address. This bench plays
// that attacker: after *every* retired instruction it scans the live stack
// for cleartext return sites and reports the exposure.
#include <cstdio>
#include <inttypes.h>

#include <set>

#include "src/attack/experiments.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

struct Window {
  uint64_t exposed_steps = 0;
  uint64_t total_steps = 0;
  uint64_t longest_exposure = 0;

  double ExposedPercent() const {
    return total_steps == 0 ? 0
                            : 100.0 * static_cast<double>(exposed_steps) /
                                  static_cast<double>(total_steps);
  }
};

Window MeasureExposure(CompiledKernel& kernel) {
  ExploitLab lab(&kernel);
  std::vector<uint64_t> sites_vec = lab.CollectReturnSites();
  std::set<uint64_t> sites(sites_vec.begin(), sites_vec.end());

  Cpu cpu(kernel.image.get());
  Window w;
  uint64_t streak = 0;
  cpu.set_step_observer([&](const Cpu& c) {
    ++w.total_steps;
    bool exposed = false;
    uint64_t rsp = c.reg(Reg::kRsp);
    // The attacker probes the active stack (bounded scan).
    for (uint64_t a = rsp; a + 8 <= c.stack_top() && a < rsp + 512; a += 8) {
      auto v = kernel.image->Peek64(a);
      if (v.ok() && sites.count(*v) > 0) {
        exposed = true;
        break;
      }
    }
    if (exposed) {
      ++w.exposed_steps;
      ++streak;
      if (streak > w.longest_exposure) {
        w.longest_exposure = streak;
      }
    } else {
      streak = 0;
    }
  });
  RunResult r = cpu.CallFunction("sys_deep_call", {0});
  KRX_CHECK(r.reason == StopReason::kReturned);
  return w;
}

int Main() {
  std::printf("kR^X reproduction — §5.3 race-hazard window (cleartext return addresses on the\n"
              "live stack, probed after every retired instruction of a 10-deep call chain)\n\n");
  const uint64_t seed = 0x7ACE;
  KernelSource src = MakeBenchSource(seed);

  struct Row {
    const char* name;
    ProtectionConfig config;
  };
  const Row rows[] = {
      {"no RA protection", ProtectionConfig::DiversifyOnly(RaScheme::kNone, seed)},
      {"encryption (X)", ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed)},
      {"decoys (D)", ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, seed)},
  };
  std::printf("%-18s %14s %14s %18s\n", "scheme", "steps exposed", "total steps",
              "longest window");
  for (const Row& row : rows) {
    auto kernel = CompileKernel(src, {row.config, LayoutKind::kKrx});
    KRX_CHECK(kernel.ok());
    Window w = MeasureExposure(*kernel);
    std::printf("%-18s %8" PRIu64 " (%4.1f%%) %14" PRIu64 " %12" PRIu64 " insts\n", row.name,
                w.exposed_steps, w.ExposedPercent(), w.total_steps, w.longest_exposure);
  }
  std::printf("\nUnder X the exposure is the 1-3 instruction prologue/epilogue window the\n"
              "paper describes (\"surgically time the execution of 1-3 kR^X instructions\");\n"
              "under D a cleartext return address is always on the stack, but it is pinned\n"
              "to a tripwire twin — exposure alone no longer identifies it (Psucc = 1/2^n).\n");
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
