// The fault-injection soak harness (EXPERIMENTS.md E15).
//
// Runs N seeded fault injections across three protected kernel builds
// (SFI-O3, MPX, SFI+X) and reports, per fault class, the detection rate,
// the detection latency (instructions from injection to trap), and any
// misclassification — plus the kill-task survival scenario: a scheduler
// kernel whose rogue task wild-reads kernel text, is reaped by the oops
// supervisor, and must leave the surviving workers' results intact.
//
//   fault_campaign [--n <injections>] [--seed <seed>] [--json]
//
// Exit status 0 iff every injected fault was either detected with the
// correct diagnostic class or proven benign AND the survival scenario
// completed with correct worker results.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <inttypes.h>

#include "bench/bench_json.h"
#include "src/fault/campaign.h"

namespace krx {
namespace {

int Run(int argc, char** argv) {
  CampaignOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      options.injections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--n <injections>] [--seed <seed>] [--json]\n",
                   argv[0]);
      return 2;
    }
  }

  auto report = RunFaultCampaign(options);
  if (!report.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", report.status().ToString().c_str());
    return 2;
  }
  auto survival = RunKillTaskScenario(options.seed);
  if (!survival.ok()) {
    std::fprintf(stderr, "kill-task scenario failed: %s\n",
                 survival.status().ToString().c_str());
    return 2;
  }

  const bool workers_ok = survival->survived && survival->counter >= 64 &&
                          survival->killed_tasks.size() == 1 &&
                          survival->killed_tasks[0] == 3 && survival->worker_c_runs == 3;

  if (json) {
    std::string campaign_json = report->ToJson();
    // Prepend the shared metadata header, then splice the survival and
    // metrics blocks into the campaign object.
    const size_t opening = campaign_json.find('{');
    campaign_json.insert(opening + 1,
                         "\n  \"meta\": " +
                             bench_json::MetaBlock("fault_campaign", options.seed,
                                                   "sfi-o3+mpx+x", "krx") +
                             ",");
    const size_t closing = campaign_json.rfind('}');
    std::string out = campaign_json.substr(0, closing);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"kill_task\": {\"survived\": %s, \"killed_task\": %" PRIu64
                  ", \"oopses\": %zu, \"worker_a_runs\": %" PRIu64
                  ", \"worker_b_runs\": %" PRIu64 ", \"worker_c_runs\": %" PRIu64
                  ", \"counter\": %" PRIu64 "}",
                  workers_ok ? "true" : "false",
                  survival->killed_tasks.empty() ? 0 : survival->killed_tasks[0],
                  survival->oops_count, survival->worker_a_runs, survival->worker_b_runs,
                  survival->worker_c_runs, survival->counter);
    out += buf;
    out += ",\n  \"metrics\": " + bench_json::MetricsBlock() + "\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::fputs(report->ToString().c_str(), stdout);
    std::printf(
        "\nkill-task survival: %s — killed task(s):", workers_ok ? "OK" : "FAILED");
    for (uint64_t t : survival->killed_tasks) {
      std::printf(" %" PRIu64, t);
    }
    std::printf(", %zu oops(es), worker runs a=%" PRIu64 " b=%" PRIu64 " c=%" PRIu64
                ", counter=%" PRIu64 "\n",
                survival->oops_count, survival->worker_a_runs, survival->worker_b_runs,
                survival->worker_c_runs, survival->counter);
    if (!survival->first_oops.empty()) {
      std::printf("first oops record:\n%s\n", survival->first_oops.c_str());
    }
  }
  return report->AllAccounted() && workers_ok ? 0 : 1;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Run(argc, argv); }
