// Google-benchmark microbenchmarks of the reproduction's own substrate:
// interpreter dispatch, instruction encode/decode, pass throughput, gadget
// scanning, and full kernel compilation. These track the performance of the
// simulator itself (not the paper's numbers).
#include <benchmark/benchmark.h>

#include "src/attack/gadget_scanner.h"
#include "src/isa/encoding.h"
#include "src/workload/corpus.h"
#include "src/workload/fig2.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

void BM_EncodeDecode(benchmark::State& state) {
  Instruction inst = Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsi, 0x140));
  std::vector<uint8_t> bytes;
  for (auto _ : state) {
    bytes.clear();
    EncodeInstruction(inst, bytes);
    auto dec = DecodeInstruction(bytes.data(), bytes.size(), 0);
    benchmark::DoNotOptimize(dec);
  }
}
BENCHMARK(BM_EncodeDecode);

void BM_SfiPass(benchmark::State& state) {
  const SfiLevel level = static_cast<SfiLevel>(state.range(0));
  for (auto _ : state) {
    Function fn = MakeFig2Function();
    SymbolTable symbols;
    int32_t handler = symbols.Intern(kKrxHandlerName);
    ProtectionConfig config;
    config.sfi = level;
    SfiStats stats;
    benchmark::DoNotOptimize(ApplySfiPass(fn, config, handler, 0x7FFF0000, &stats));
  }
}
BENCHMARK(BM_SfiPass)->DenseRange(1, 4);  // kO0 .. kO3

void BM_CompileKernel(benchmark::State& state) {
  KernelSource src = MakeBenchSource(1);
  for (auto _ : state) {
    auto kernel = CompileKernel(src, {ProtectionConfig::Full(false, RaScheme::kEncrypt, 1), LayoutKind::kKrx});
    benchmark::DoNotOptimize(kernel);
  }
}
BENCHMARK(BM_CompileKernel)->Unit(benchmark::kMillisecond);

void BM_Interpreter(benchmark::State& state) {
  KernelSource src = MakeBenchSource(1);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  KRX_CHECK(kernel.ok());
  Cpu cpu(kernel->image.get());
  auto buf = SetUpOpBuffer(*kernel->image, 1);
  KRX_CHECK(buf.ok());
  auto entry = kernel->image->symbols().AddressOf("sys_open_close");
  KRX_CHECK(entry.ok());
  uint64_t insts = 0;
  for (auto _ : state) {
    RunResult r = cpu.CallFunction(*entry, {*buf});
    insts += r.instructions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["sim_insts/s"] =
      benchmark::Counter(static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Interpreter);

void BM_GadgetScan(benchmark::State& state) {
  KernelSource src = MakeBenchSource(1);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  KRX_CHECK(kernel.ok());
  const PlacedSection* text = kernel->image->FindSection(".text");
  std::vector<uint8_t> bytes(text->size);
  KRX_CHECK(kernel->image->PeekBytes(text->vaddr, bytes.data(), bytes.size()).ok());
  GadgetScanner scanner;
  for (auto _ : state) {
    auto gadgets = scanner.Scan(bytes.data(), bytes.size(), text->vaddr);
    benchmark::DoNotOptimize(gadgets);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_GadgetScan);

}  // namespace
}  // namespace krx

BENCHMARK_MAIN();
