// E1 — Reproduces Table 1: LMBench latency/bandwidth overhead (% over the
// vanilla kernel) for every kR^X protection column.
//
//   table1_lmbench [--csv PATH] [--metrics-csv PATH]
//     --csv writes the matrix in long form (benchmark,config,measured_pct,
//     paper_pct); --metrics-csv writes the post-run metrics registry
//     snapshot (deterministic: timing metrics excluded).
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/telemetry/metrics.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

int Main(const std::string& csv_path, const std::string& metrics_csv_path) {
  std::printf("kR^X reproduction — Table 1 (LMBench micro-benchmark overhead, %% over vanilla)\n");
  std::printf("paper values in parentheses; '~0' printed for |x| < 0.05\n\n");

  auto matrix = RunTable1(/*seed=*/0x6b5258);
  if (!matrix.ok()) {
    std::fprintf(stderr, "harness failed: %s\n", matrix.status().ToString().c_str());
    return 1;
  }

  const auto& rows = LmbenchRows();
  std::printf("%-22s", "Benchmark");
  for (const auto& col : matrix->column_names) {
    std::printf(" %17s", col.c_str());
  }
  std::printf("\n");

  auto cell = [](double measured, double paper) {
    char buf[40];
    char m[16], p[16];
    if (measured < 0.05 && measured > -0.05) {
      std::snprintf(m, sizeof(m), "~0");
    } else {
      std::snprintf(m, sizeof(m), "%.2f", measured);
    }
    if (paper < 0.05 && paper > -0.05) {
      std::snprintf(p, sizeof(p), "~0");
    } else {
      std::snprintf(p, sizeof(p), "%.2f", paper);
    }
    std::snprintf(buf, sizeof(buf), "%s (%s)", m, p);
    std::printf(" %17s", buf);
  };

  bool bandwidth_header = false;
  for (size_t i = 0; i < matrix->row_names.size(); ++i) {
    if (!bandwidth_header && rows[i].bandwidth) {
      std::printf("---- bandwidth ----\n");
      bandwidth_header = true;
    } else if (i == 0) {
      std::printf("---- latency ----\n");
    }
    std::printf("%-22s", matrix->row_names[i].c_str());
    for (size_t c = 0; c < matrix->column_names.size(); ++c) {
      cell(matrix->percent[i][c], rows[i].paper[c]);
    }
    std::printf("\n");
  }

  // Column averages (measured vs. paper), mirroring §7.2's summary numbers.
  std::printf("\n%-22s", "Average");
  for (size_t c = 0; c < matrix->column_names.size(); ++c) {
    double m = 0, p = 0;
    for (size_t i = 0; i < matrix->row_names.size(); ++i) {
      m += matrix->percent[i][c];
      p += rows[i].paper[c];
    }
    m /= static_cast<double>(matrix->row_names.size());
    p /= static_cast<double>(matrix->row_names.size());
    cell(m, p);
  }
  std::printf("\n");

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    out << "benchmark,config,measured_pct,paper_pct\n";
    for (size_t i = 0; i < matrix->row_names.size(); ++i) {
      for (size_t c = 0; c < matrix->column_names.size(); ++c) {
        char line[160];
        std::snprintf(line, sizeof(line), "%s,%s,%.4f,%.2f\n", matrix->row_names[i].c_str(),
                      matrix->column_names[c].c_str(), matrix->percent[i][c], rows[i].paper[c]);
        out << line;
      }
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!metrics_csv_path.empty()) {
    std::ofstream out(metrics_csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_csv_path.c_str());
      return 1;
    }
    out << telemetry::MetricsRegistry::Global().SnapshotCsv(/*include_timing=*/false);
    std::printf("wrote %s\n", metrics_csv_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) {
  std::string csv, metrics_csv;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0 && i + 1 < argc) {
      metrics_csv = argv[++i];
    } else {
      std::fprintf(stderr, "usage: table1_lmbench [--csv PATH] [--metrics-csv PATH]\n");
      return 2;
    }
  }
  return krx::Main(csv, metrics_csv);
}
