// Attributes each protection column's cycles to instruction classes using
// the CPU's dynamic instruction-mix telemetry: the "where does the overhead
// actually go" companion to Table 1. SFI shows up as extra ALU (cmp) +
// branches (ja) + the rare pushfq/popfq; MPX as bndcu; X as extra loads and
// read-modify-writes on the stack; D as push/pop + lea; diversification as
// connector jumps.
#include <cstdio>
#include <inttypes.h>

#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

InstMix MixFor(CompiledKernel& kernel, const char* op, uint64_t buf_seed) {
  CpuOptions opts;
  opts.mpx_enabled = kernel.config.mpx;
  Cpu cpu(kernel.image.get(), CostModel(), opts);
  auto buf = SetUpOpBuffer(*kernel.image, buf_seed);
  KRX_CHECK(buf.ok());
  auto m = cpu.CallFunction(op, {*buf});
  KRX_CHECK(m.reason == StopReason::kReturned);
  return m.mix;
}

void PrintDelta(const char* name, const InstMix& base, const InstMix& v) {
  auto d = [](uint64_t a, uint64_t b) { return static_cast<int64_t>(b) - static_cast<int64_t>(a); };
  std::printf("  %-9s %+7" PRId64 " alu  %+6" PRId64 " br  %+6" PRId64 " jmp  %+6" PRId64
              " load  %+6" PRId64 " store  %+5" PRId64 " lea  %+5" PRId64 " push/pop  %+5" PRId64
              " pushfq  %+5" PRId64 " popfq  %+6" PRId64 " bndcu\n",
              name, d(base.alu, v.alu), d(base.branches, v.branches), d(base.jumps, v.jumps),
              d(base.loads, v.loads), d(base.stores, v.stores), d(base.lea, v.lea),
              d(base.pushpop, v.pushpop), d(base.pushfq, v.pushfq), d(base.popfq, v.popfq),
              d(base.bndcu, v.bndcu));
}

int Main() {
  const uint64_t seed = 0xB0B;
  std::printf("kR^X reproduction — dynamic instruction-mix deltas vs. vanilla\n"
              "(positive numbers: instructions the protection adds per op invocation)\n");
  KernelSource src = MakeBenchSource(seed);
  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  KRX_CHECK(vanilla.ok());

  const char* ops[] = {"sys_open_close", "sys_select_100_tcp", "sys_fork_exit"};
  for (const char* op : ops) {
    std::printf("\n[%s]\n", op);
    InstMix base = MixFor(*vanilla, op, seed);
    std::printf("  vanilla: %" PRIu64 " loads, %" PRIu64 " stores, %" PRIu64 " alu, %" PRIu64
                " branches, %" PRIu64 " calls\n",
                base.loads, base.stores, base.alu, base.branches, base.calls);
    for (const Column& col : Table1Columns(seed)) {
      auto kernel = CompileKernel(src, {col.config, col.layout});
      KRX_CHECK(kernel.ok());
      PrintDelta(col.name.c_str(), base, MixFor(*kernel, op, seed));
    }
  }
  std::printf("\nReading the deltas: SFI = cmp(alu)+ja(branch); O0 additionally pushfq/popfq;\n"
              "MPX = bndcu only; X = 2 rip-rel loads + 2 stack RMWs per activation (the rmw\n"
              "loads/stores show up in both columns); D = push/pop + lea per call;\n"
              "diversification = connector jmps.\n");

  // Static check census per range-checked column: how many checks each
  // optimization level actually leaves in the image. O4's cross-block
  // elision + loop hoisting shows up as a drop in `emitted` relative to O3
  // at identical read-site counts.
  std::printf("\nStatic range-check census (whole image)\n");
  std::printf("  %-9s %8s %8s %8s %8s\n", "column", "sites", "emitted", "elided", "hoisted");
  for (const Column& col : Table1Columns(seed)) {
    if (!col.config.HasRangeChecks() && !col.config.mpx) {
      continue;
    }
    auto kernel = CompileKernel(src, {col.config, col.layout});
    KRX_CHECK(kernel.ok());
    const SfiStats& s = kernel->stats.sfi;
    std::printf("  %-9s %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "\n", col.name.c_str(),
                s.read_sites, s.checks_emitted, s.checks_coalesced, s.checks_hoisted);
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
