// The self-healing supervision soak (EXPERIMENTS.md E19).
//
// One Full+X kernel, N worker Cpus, and every supervision mechanism under
// simultaneous stress for a configurable number of rounds:
//
//   - hang injection: workers are periodically sent into an unbounded spin
//     (`sys_spin`) under a wall-clock deadline; every injected hang must be
//     preempted into kDeadlineExceeded, and the worker must prove recovery
//     by reproducing the witness op's golden result;
//   - one wedge: a step observer freezes a Cpu mid-run (heartbeat nonzero
//     and frozen) until the watchdog's hard-lockup callback quarantines the
//     Cpu and preempts the run — the frozen-lockup detection path, distinct
//     from runaway-but-progressing hangs;
//   - rerand churn: epochs commit concurrently with the worker storm, with
//     periodic failpoint drills (two forced rollbacks stepping the timer
//     aspect down the degradation ladder, then a retried commit);
//   - fault churn: a fresh FaultInjector per round cycles through the
//     eligible fault classes; every injection must be detected with the
//     correct diagnostic or proven benign;
//   - checkpoint/restore: periodic captures at quiesce points; on restore
//     rounds the witness op's entry byte is corrupted with int3 (the
//     "unsurvivable" oops), the trap must be caught, and Restore must bring
//     the machine back to bit-identical witness behaviour across every
//     epoch that committed since the capture.
//
//   chaos_campaign [--rounds <n>] [--cpus <n>] [--seed <seed>] [--json]
//                  [--quick]
//
// Exit status 0 iff 100% of injected hangs were detected, every injection
// was accounted, every restore reproduced the golden witness, and >= 95% of
// recovery attempts succeeded without process exit. --json emits
// BENCH_chaos.json content (meta + gates + recovery-latency percentiles +
// the metrics registry) on stdout.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <inttypes.h>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/fault/injector.h"
#include "src/ir/builder.h"
#include "src/kernel/assembler.h"
#include "src/plugin/pipeline.h"
#include "src/rerand/engine.h"
#include "src/supervise/checkpoint.h"
#include "src/supervise/health.h"
#include "src/supervise/watchdog.h"
#include "src/workload/corpus.h"
#include "src/workload/ops.h"

namespace krx {
namespace {

using SteadyClock = std::chrono::steady_clock;

struct ChaosOptions {
  int rounds = 12;
  int cpus = 3;
  int runs_per_worker = 3;   // runs per worker per round
  uint64_t seed = 0xC4A05;
  uint64_t hang_deadline_us = 2'000;
  uint64_t quiesce_timeout_ms = 2'000;
  int injections_per_round = 3;
  bool json = false;
};

// Wall-clock gates, generous enough for ASan/loaded CI machines.
constexpr uint64_t kHangDetectBoundUs = 1'000'000;  // per injected hang
constexpr uint64_t kWedgeBoundMs = 5'000;           // observer self-release

uint64_t ElapsedUs(SteadyClock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   SteadyClock::now() - since)
                                   .count());
}

// An unbounded spin (no memory traffic): the runaway-but-progressing guest
// the deadline exists for. kDefaultMaxSteps would stop it as kStepLimit, so
// hang runs raise max_steps far past what any deadline allows to retire.
void AddSpinFunction(KernelSource* src) {
  FunctionBuilder b("sys_spin");
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::MovRI(Reg::kRcx, int64_t{1} << 40));
  const int32_t head = b.ReserveBlock();
  b.Bind(head);
  b.Emit(Instruction::AddRR(Reg::kRax, Reg::kRcx));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, head));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("sys_spin");
}

struct Percentiles {
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

Percentiles Summarize(std::vector<uint64_t> v) {
  Percentiles p;
  if (v.empty()) {
    return p;
  }
  std::sort(v.begin(), v.end());
  p.p50 = v[v.size() / 2];
  p.p99 = v[std::min(v.size() - 1, (v.size() * 99) / 100)];
  p.max = v.back();
  return p;
}

struct CampaignTally {
  // Hang gate.
  uint64_t hangs_injected = 0;
  uint64_t hangs_detected = 0;
  uint64_t hang_detect_max_us = 0;
  // Recovery gate (hang witnesses + checkpoint restores).
  uint64_t recovery_attempts = 0;
  uint64_t recovered = 0;
  std::vector<uint64_t> recovery_latency_us;
  // Fault churn.
  uint64_t injections = 0;
  uint64_t injections_accounted = 0;
  // Checkpoint drills.
  uint64_t captures = 0;
  uint64_t restores = 0;
  uint64_t restores_identical = 0;
  uint64_t corruption_traps = 0;
  // Wedge.
  bool wedge_ran = false;
  bool wedge_detected = false;
  uint64_t wedge_wall_us = 0;
  // Background runs that failed to reproduce the golden result.
  uint64_t anomalies = 0;
  uint64_t quarantine_skips = 0;

  std::mutex mu;  // guards the fields the worker threads touch
};

int Run(const ChaosOptions& opts) {
  // --- Build: base corpus + a read-only mixed op (the witness) + the spin.
  // No writes in the op profile: its %rax depends only on the static buffer
  // fill, so concurrent workers can share one buffer and every clean run is
  // bit-comparable against one golden value.
  KernelSource src = MakeBaseSource();
  src.phys_bytes = 16ULL << 20;  // keep checkpoint snapshots cheap
  OpProfile profile;
  profile.name = "chaos";
  profile.loop_iters = 6;
  profile.coalescible_reads = 4;
  profile.chased_reads = 2;
  profile.indexed_reads = 2;
  profile.flagful_reads = 1;
  profile.alu = 4;
  profile.rsp_reads = 1;
  profile.calls = 1;
  profile.leaf_depth = 2;
  const std::string witness_op = EmitKernelOp(&src, profile);
  AddSpinFunction(&src);

  ProtectionConfig config = ProtectionConfig::Full(/*with_mpx=*/false, RaScheme::kEncrypt,
                                                   opts.seed);
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  if (!kernel.ok()) {
    std::fprintf(stderr, "chaos: compile failed: %s\n", kernel.status().ToString().c_str());
    return 2;
  }
  KernelImage& image = *kernel->image;
  auto buffer = SetUpOpBuffer(image, opts.seed);
  if (!buffer.ok()) {
    std::fprintf(stderr, "chaos: buffer setup failed: %s\n",
                 buffer.status().ToString().c_str());
    return 2;
  }

  // --- Supervision plumbing.
  RerandOptions rerand_options;
  rerand_options.seed = opts.seed ^ 0x5EED;
  rerand_options.quiesce_timeout_ms = opts.quiesce_timeout_ms;
  RerandEngine engine(&*kernel, rerand_options);
  RetryPolicy epoch_policy;
  epoch_policy.max_attempts = 3;
  epoch_policy.base_backoff = std::chrono::microseconds(200);
  engine.set_retry_policy(epoch_policy);

  HealthState health;
  Watchdog::Options wd_options;
  wd_options.tick = std::chrono::milliseconds(5);
  wd_options.soft_ticks = 2;
  wd_options.hard_ticks = 4;
  Watchdog watchdog(wd_options);

  std::vector<std::unique_ptr<Cpu>> cpus;
  std::vector<std::atomic<uint64_t>*> heartbeats;
  std::atomic<bool> unwedge{false};
  for (int i = 0; i < opts.cpus; ++i) {
    cpus.push_back(std::make_unique<Cpu>(&image));
    Cpu* cpu = cpus.back().get();
    engine.RegisterCpu(cpu);
    std::atomic<uint64_t>* hb =
        watchdog.Watch("cpu" + std::to_string(i), [cpu, i, &health, &unwedge] {
          health.RecordHardLockup(i, "watchdog hard lockup");
          cpu->RequestPreempt();
          unwedge.store(true, std::memory_order_release);
        });
    cpu->set_heartbeat_slot(hb);
    heartbeats.push_back(hb);
  }
  watchdog.Start();

  CheckpointManager ckpt(&image);
  for (auto& cpu : cpus) {
    ckpt.TrackCpu(cpu.get());
  }
  // The engine's layout bookkeeping must rewind with the bytes it describes:
  // a restore that rewrites .text to a snapshot layout but leaves the map's
  // current offsets at the post-snapshot permutation would corrupt the next
  // epoch. The offsets travel as opaque host state.
  RerandMap* map = kernel->rerand.get();
  ckpt.AddHostState(
      [map] {
        std::vector<uint64_t> offsets;
        offsets.reserve(map->functions.size());
        for (const RerandFunction& fn : map->functions) {
          offsets.push_back(fn.current_offset);
        }
        return offsets;
      },
      [map](const std::vector<uint64_t>& offsets) {
        for (size_t i = 0; i < offsets.size() && i < map->functions.size(); ++i) {
          map->functions[i].current_offset = offsets[i];
        }
      });

  CampaignTally tally;

  // --- Golden witness (before any churn).
  const RunResult golden = cpus[0]->CallFunction(witness_op, {*buffer});
  if (golden.reason != StopReason::kReturned) {
    std::fprintf(stderr, "chaos: golden witness run failed: %s\n",
                 StopReasonName(golden.reason));
    return 2;
  }

  // Witness helper: proves a Cpu is healthy again by reproducing the golden
  // result. Returns true and records the latency on success.
  auto recover_via_witness = [&](Cpu* cpu) {
    const SteadyClock::time_point t0 = SteadyClock::now();
    const RunResult r = cpu->CallFunction(witness_op, {*buffer});
    const uint64_t us = ElapsedUs(t0);
    std::lock_guard<std::mutex> lock(tally.mu);
    ++tally.recovery_attempts;
    if (r.reason == StopReason::kReturned && r.rax == golden.rax) {
      ++tally.recovered;
      tally.recovery_latency_us.push_back(us);
      return true;
    }
    return false;
  };

  const int wedge_round = opts.rounds - 2;  // late: quarantine costs a worker
  const int wedge_cpu = opts.cpus - 1;

  for (int round = 0; round < opts.rounds; ++round) {
    // --- Wedge scenario: freeze a run mid-instruction-stream (the observer
    // busy-waits, so the heartbeat stays nonzero and frozen) until the
    // watchdog's hard path quarantines the Cpu and preempts it.
    if (round == wedge_round && wedge_cpu >= 0) {
      Cpu* cpu = cpus[wedge_cpu].get();
      unwedge.store(false, std::memory_order_release);
      uint64_t observed_steps = 0;
      const SteadyClock::time_point wedge_start = SteadyClock::now();
      cpu->set_step_observer([&](const Cpu&) {
        if (++observed_steps != 64) {
          return;
        }
        while (!unwedge.load(std::memory_order_acquire)) {
          if (ElapsedUs(wedge_start) > kWedgeBoundMs * 1000) {
            return;  // watchdog never fired; the run ends as kStepLimit
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
      RunOptions run;
      run.max_steps = 10'000'000;
      const RunResult r = cpu->CallFunction("sys_spin", {}, run);
      cpu->set_step_observer(nullptr);
      tally.wedge_ran = true;
      tally.wedge_wall_us = ElapsedUs(wedge_start);
      tally.wedge_detected = r.reason == StopReason::kDeadlineExceeded &&
                             watchdog.hard_lockups() > 0 &&
                             health.cpu_quarantined(wedge_cpu);
      ++tally.hangs_injected;
      if (tally.wedge_detected) {
        ++tally.hangs_detected;
        tally.hang_detect_max_us = std::max(tally.hang_detect_max_us, tally.wedge_wall_us);
      }
      // Recovery for a quarantined Cpu is the quarantine itself: the storm
      // below routes work away from it. Count the rerouting as an attempt.
      std::lock_guard<std::mutex> lock(tally.mu);
      ++tally.recovery_attempts;
      if (tally.wedge_detected) {
        ++tally.recovered;
        tally.recovery_latency_us.push_back(tally.wedge_wall_us);
      }
    }

    // --- Worker storm: each worker mixes clean witness runs with injected
    // hangs; the orchestrator commits rerand epochs underneath them.
    std::vector<std::thread> workers;
    for (int w = 0; w < opts.cpus; ++w) {
      workers.emplace_back([&, w] {
        Rng rng(opts.seed ^ (0x9E3779B97F4A7C15ULL * (w + 1)) ^
                (uint64_t{0xC11A05} * (round + 1)));
        Cpu* cpu = cpus[w].get();
        for (int k = 0; k < opts.runs_per_worker; ++k) {
          if (health.cpu_quarantined(w)) {
            std::lock_guard<std::mutex> lock(tally.mu);
            ++tally.quarantine_skips;
            continue;
          }
          const bool inject_hang = (round == 0 && k == 0) || rng.NextBelow(4) == 0;
          if (inject_hang) {
            RunOptions run;
            run.max_steps = 4'000'000'000ULL;
            run.deadline_us = opts.hang_deadline_us;
            if (!health.block_cache_enabled()) {
              run.use_block_cache = false;
            }
            const SteadyClock::time_point t0 = SteadyClock::now();
            const RunResult r = cpu->CallFunction("sys_spin", {}, run);
            const uint64_t us = ElapsedUs(t0);
            {
              std::lock_guard<std::mutex> lock(tally.mu);
              ++tally.hangs_injected;
              if (r.reason == StopReason::kDeadlineExceeded && us <= kHangDetectBoundUs) {
                ++tally.hangs_detected;
              }
              tally.hang_detect_max_us = std::max(tally.hang_detect_max_us, us);
            }
            recover_via_witness(cpu);
          } else {
            RunOptions run;
            if (!health.block_cache_enabled()) {
              run.use_block_cache = false;
            }
            const RunResult r = cpu->CallFunction(witness_op, {*buffer}, run);
            if (r.reason != StopReason::kReturned || r.rax != golden.rax) {
              std::lock_guard<std::mutex> lock(tally.mu);
              ++tally.anomalies;
            }
          }
        }
      });
    }

    // Rerand churn from the orchestrator (not inside any gated run). Drill
    // rounds force two consecutive rollbacks — enough to step the timer
    // aspect down the ladder — then prove the retried commit still lands.
    if (round % 5 == 3) {
      engine.set_failpoint(RerandStep::kRelayout);
      for (int f = 0; f < 2; ++f) {
        auto failed = engine.RunEpoch(RerandTrigger::kTimer);
        if (!failed.ok()) {
          health.RecordEpochRollback(failed.status().message());
        }
      }
      engine.clear_failpoint();
    }
    auto epoch = engine.RunEpochWithRetry(RerandTrigger::kTimer);
    if (epoch.ok()) {
      health.RecordEpochCommit();
    } else {
      health.RecordEpochRollback(epoch.status().message());
    }

    for (std::thread& t : workers) {
      t.join();
    }

    // --- Fault churn: a fresh injector per round (golden runs and traced
    // addresses go stale whenever an epoch or a restore moves the text).
    {
      FaultInjector injector(&*kernel, /*buffer_seed=*/opts.seed ^ round);
      const std::vector<FaultClass> classes = injector.EligibleClasses();
      Rng rng(opts.seed ^ (0xFA017ULL * (round + 1)));
      for (int j = 0; j < opts.injections_per_round && !classes.empty(); ++j) {
        const FaultClass cls = classes[(round * opts.injections_per_round + j) %
                                       classes.size()];
        auto outcome = injector.Inject(cls, witness_op, rng);
        ++tally.injections;
        if (outcome.ok() && (outcome->correct || outcome->detection == Detection::kBenign)) {
          ++tally.injections_accounted;
        } else if (!outcome.ok()) {
          std::fprintf(stderr, "chaos: injection host error (%s): %s\n",
                       FaultClassName(cls), outcome.status().ToString().c_str());
        }
      }
    }

    // --- Checkpoint cadence: capture on 3k rounds, corrupt + restore on
    // 3k+2 — so every restore rewinds across the epochs and injections of
    // the two intervening rounds.
    if (round % 3 == 0) {
      Status s = ckpt.Capture(&engine.gate(), opts.quiesce_timeout_ms);
      if (s.ok()) {
        ++tally.captures;
      } else {
        std::fprintf(stderr, "chaos: capture failed: %s\n", s.ToString().c_str());
      }
    } else if (round % 3 == 2 && ckpt.has_checkpoint()) {
      // The "unsurvivable" event: tripwire byte on the witness entry. The
      // very next witness run must trap, and only Restore can heal it.
      auto entry = image.symbols().AddressOf(witness_op);
      if (entry.ok()) {
        const uint8_t int3 = kTextPadByte;  // Opcode::kInt3 in the krx64 encoding
        if (image.PokeBytes(*entry, &int3, 1).ok()) {
          image.BumpTextGeneration();  // predecoded blocks hold stale bytes
          const RunResult trapped = cpus[0]->CallFunction(witness_op, {*buffer});
          if (trapped.reason == StopReason::kException &&
              trapped.exception == ExceptionKind::kBreakpoint) {
            ++tally.corruption_traps;
          }
          health.RecordBlockCacheCorruption("int3 tripwire in " + witness_op);
          const SteadyClock::time_point t0 = SteadyClock::now();
          Status s = ckpt.Restore(&engine.gate(), opts.quiesce_timeout_ms);
          ++tally.restores;
          if (s.ok()) {
            const RunResult healed = cpus[0]->CallFunction(witness_op, {*buffer});
            std::lock_guard<std::mutex> lock(tally.mu);
            ++tally.recovery_attempts;
            if (healed.reason == StopReason::kReturned && healed.rax == golden.rax) {
              ++tally.restores_identical;
              ++tally.recovered;
              // Restore latency through the healed witness run: detection
              // already happened (the trap above); this is time-to-recovered.
              tally.recovery_latency_us.push_back(ElapsedUs(t0));
            }
          } else {
            std::fprintf(stderr, "chaos: restore failed: %s\n", s.ToString().c_str());
            std::lock_guard<std::mutex> lock(tally.mu);
            ++tally.recovery_attempts;
          }
        }
      }
    }
  }

  watchdog.Stop();
  for (size_t i = 0; i < cpus.size(); ++i) {
    cpus[i]->set_heartbeat_slot(nullptr);
  }

  // --- Gates.
  const bool hangs_ok = tally.hangs_injected > 0 &&
                        tally.hangs_detected == tally.hangs_injected &&
                        tally.hang_detect_max_us <= kHangDetectBoundUs;
  const bool recovery_ok =
      tally.recovery_attempts > 0 &&
      static_cast<double>(tally.recovered) >=
          0.95 * static_cast<double>(tally.recovery_attempts);
  const bool injections_ok = tally.injections > 0 &&
                             tally.injections_accounted == tally.injections;
  const bool restores_ok = tally.restores > 0 &&
                           tally.restores_identical == tally.restores &&
                           tally.corruption_traps == tally.restores;
  const bool wedge_ok = !tally.wedge_ran || tally.wedge_detected;
  const bool clean_ok = tally.anomalies == 0;
  const bool ok = hangs_ok && recovery_ok && injections_ok && restores_ok && wedge_ok &&
                  clean_ok;

  const Percentiles rec = Summarize(tally.recovery_latency_us);
  const uint64_t epochs = engine.epochs_completed();
  const uint64_t epoch_failures = engine.epoch_failures();
  const int degradations = static_cast<int>(health.transitions().size());

  if (opts.json) {
    std::string out = "{\n  \"meta\": " +
                      bench_json::MetaBlock("chaos_campaign", opts.seed, "full-x", "krx") +
                      ",\n";
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "  \"rounds\": %d, \"cpus\": %d,\n"
                  "  \"hangs\": {\"injected\": %" PRIu64 ", \"detected\": %" PRIu64
                  ", \"detect_max_us\": %" PRIu64 ", \"wedge_detected\": %s},\n"
                  "  \"injections\": {\"total\": %" PRIu64 ", \"accounted\": %" PRIu64
                  "},\n"
                  "  \"rerand\": {\"epochs\": %" PRIu64 ", \"failures\": %" PRIu64 "},\n"
                  "  \"checkpoints\": {\"captures\": %" PRIu64 ", \"restores\": %" PRIu64
                  ", \"bit_identical\": %" PRIu64 ", \"corruption_traps\": %" PRIu64
                  "},\n"
                  "  \"health\": {\"degradations\": %d, \"quarantined_cpus\": %d, "
                  "\"block_cache_enabled\": %s, \"rerand_timer_enabled\": %s, "
                  "\"quarantine_skips\": %" PRIu64 "},\n"
                  "  \"recovery\": {\"attempts\": %" PRIu64 ", \"recovered\": %" PRIu64
                  ", \"p50_us\": %" PRIu64 ", \"p99_us\": %" PRIu64 ", \"max_us\": %" PRIu64
                  "},\n"
                  "  \"anomalies\": %" PRIu64 ", \"pass\": %s,\n",
                  opts.rounds, opts.cpus, tally.hangs_injected, tally.hangs_detected,
                  tally.hang_detect_max_us, tally.wedge_detected ? "true" : "false",
                  tally.injections, tally.injections_accounted, epochs, epoch_failures,
                  tally.captures, tally.restores, tally.restores_identical,
                  tally.corruption_traps, degradations, health.quarantined_cpus(),
                  health.block_cache_enabled() ? "true" : "false",
                  health.rerand_timer_enabled() ? "true" : "false", tally.quarantine_skips,
                  tally.recovery_attempts, tally.recovered, rec.p50, rec.p99, rec.max,
                  tally.anomalies, ok ? "true" : "false");
    out += buf;
    // Which degradation-ladder rungs tripped, and why (README points
    // operators here when health.degradations is nonzero).
    out += "  \"transitions\": [";
    const std::vector<HealthTransition> transitions = health.transitions();
    for (size_t i = 0; i < transitions.size(); ++i) {
      const HealthTransition& t = transitions[i];
      std::snprintf(buf, sizeof(buf), "%s{\"aspect\": \"%s\", \"cpu\": %d, \"to\": \"%s\"}",
                    i == 0 ? "" : ", ", HealthAspectName(t.aspect), t.cpu,
                    HealthLevelName(t.to));
      out += buf;
    }
    out += "],\n";
    out += "  \"metrics\": " + bench_json::MetricsBlock() + "\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("chaos campaign: %d rounds x %d cpus (seed 0x%llx)\n", opts.rounds,
                opts.cpus, static_cast<unsigned long long>(opts.seed));
    std::printf("  hangs:       %" PRIu64 "/%" PRIu64 " detected, max %" PRIu64
                "us (wedge %s)\n",
                tally.hangs_detected, tally.hangs_injected, tally.hang_detect_max_us,
                tally.wedge_ran ? (tally.wedge_detected ? "detected" : "MISSED") : "off");
    std::printf("  injections:  %" PRIu64 "/%" PRIu64 " accounted\n",
                tally.injections_accounted, tally.injections);
    std::printf("  rerand:      %" PRIu64 " epochs committed, %" PRIu64
                " rollbacks (drills included)\n",
                epochs, epoch_failures);
    std::printf("  checkpoints: %" PRIu64 " captures, %" PRIu64 "/%" PRIu64
                " restores bit-identical, %" PRIu64 " traps\n",
                tally.captures, tally.restores_identical, tally.restores,
                tally.corruption_traps);
    std::printf("  health:      %d degradations, %d quarantined cpu(s), cache %s, "
                "timer %s\n",
                degradations, health.quarantined_cpus(),
                health.block_cache_enabled() ? "on" : "off",
                health.rerand_timer_enabled() ? "on" : "off");
    std::printf("  recovery:    %" PRIu64 "/%" PRIu64 " recovered, p50 %" PRIu64
                "us p99 %" PRIu64 "us max %" PRIu64 "us\n",
                tally.recovered, tally.recovery_attempts, rec.p50, rec.p99, rec.max);
    std::printf("  anomalies:   %" PRIu64 "\n", tally.anomalies);
    std::printf("%s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  ChaosOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      opts.rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
      opts.cpus = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opts.json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opts.rounds = 6;
      opts.cpus = 2;
      opts.injections_per_round = 2;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rounds <n>] [--cpus <n>] [--seed <seed>] [--json] "
                   "[--quick]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opts.rounds < 3 || opts.cpus < 1) {
    std::fprintf(stderr, "chaos: need >= 3 rounds and >= 1 cpu\n");
    return 2;
  }
  return Run(opts);
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Main(argc, argv); }
