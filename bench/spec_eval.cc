// E21 — speculation-hardening cost: Table-1-style LMBench overhead of the
// spec-barrier and spec-mask config axes against the unhardened sfi-o3
// column they extend, plus each column's residual transient leak.
//
//   spec_eval [--quick] [--json] [--seed <seed>]
//
// Every column is built from the same bench source; rows are the LMBench
// kernel ops measured in deci-cycles on the deterministic cost model, so a
// single build per column suffices. The "leak" column re-runs the
// Spectre-v1 adversary (src/attack/spectre.h) against each build: the
// hardened columns must leak zero bytes, the architectural ones must not —
// the artifact records the security/performance trade in one place.
//
// --json emits the BENCH_spec.json artifact (tools/ci.sh, EXPERIMENTS.md
// E21).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/attack/spectre.h"
#include "src/workload/harness.h"
#include "src/workload/lmbench.h"

namespace krx {
namespace {

struct SpecColumn {
  std::string name;
  uint64_t spec_barriers = 0;
  uint64_t spec_masks = 0;
  uint64_t range_checks = 0;
  uint64_t leaked_bytes = 0;
  std::vector<double> overhead_pct;  // per row, vs. vanilla
  double avg_overhead_pct = 0;
};

int Run(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  uint64_t seed = 0x5BEC;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json] [--seed <seed>]\n", argv[0]);
      return 2;
    }
  }

  KernelSource src = MakeBenchSource(seed);

  // Vanilla baseline first; its deci-cycles normalize every column.
  ProtectionConfig vanilla_config;
  LayoutKind vanilla_layout;
  KRX_CHECK(ParseConfigName("vanilla", seed, &vanilla_config, &vanilla_layout));
  auto vanilla = CompileKernel(src, {vanilla_config, vanilla_layout});
  if (!vanilla.ok()) {
    std::fprintf(stderr, "vanilla build failed: %s\n", vanilla.status().ToString().c_str());
    return 1;
  }
  auto baseline = MeasureAllRows(*vanilla);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline measurement failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }

  const size_t attack_bytes = quick ? 4 : 8;
  const char* names[] = {"sfi-o3", "spec-barrier", "spec-mask"};
  std::vector<SpecColumn> columns;
  for (const char* name : names) {
    ProtectionConfig config;
    LayoutKind layout;
    KRX_CHECK(ParseConfigName(name, seed, &config, &layout));
    auto kernel = CompileKernel(src, {config, layout});
    if (!kernel.ok()) {
      std::fprintf(stderr, "%s build failed: %s\n", name, kernel.status().ToString().c_str());
      return 1;
    }
    auto rows = MeasureAllRows(*kernel);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s measurement failed: %s\n", name,
                   rows.status().ToString().c_str());
      return 1;
    }
    SpecColumn col;
    col.name = name;
    col.spec_barriers = kernel->stats.sfi.spec_barriers;
    col.spec_masks = kernel->stats.sfi.spec_masks;
    col.range_checks = kernel->stats.sfi.checks_emitted;
    for (size_t i = 0; i < rows->size(); ++i) {
      // The rax witness must agree: spec-mask may only change behavior on
      // out-of-range reads, which benign rows never perform.
      KRX_CHECK((*rows)[i].rax == (*baseline)[i].rax);
      const double base = static_cast<double>((*baseline)[i].deci_cycles);
      const double mine = static_cast<double>((*rows)[i].deci_cycles);
      const double pct = 100.0 * (mine / base - 1.0);
      col.overhead_pct.push_back(pct);
      col.avg_overhead_pct += pct;
    }
    col.avg_overhead_pct /= static_cast<double>(rows->size());
    col.leaked_bytes = SpectreV1Attack(*kernel, attack_bytes).bytes_leaked;
    columns.push_back(std::move(col));
  }

  if (json) {
    std::printf("{\n  \"meta\": %s,\n",
                bench_json::MetaBlock("spec_eval", seed, "sfi-o3|spec-barrier|spec-mask",
                                      "krx").c_str());
    std::printf("  \"attack_bytes\": %zu,\n  \"columns\": [\n", attack_bytes);
    for (size_t c = 0; c < columns.size(); ++c) {
      const SpecColumn& col = columns[c];
      std::printf("    {\"config\": \"%s\", \"avg_overhead_pct\": %.3f, "
                  "\"range_checks\": %llu, \"spec_barriers\": %llu, "
                  "\"spec_masks\": %llu, \"leaked_bytes\": %llu,\n",
                  col.name.c_str(), col.avg_overhead_pct,
                  static_cast<unsigned long long>(col.range_checks),
                  static_cast<unsigned long long>(col.spec_barriers),
                  static_cast<unsigned long long>(col.spec_masks),
                  static_cast<unsigned long long>(col.leaked_bytes));
      std::printf("     \"rows\": [");
      for (size_t i = 0; i < col.overhead_pct.size(); ++i) {
        std::printf("%s{\"row\": \"%s\", \"overhead_pct\": %.3f}", i ? ", " : "",
                    (*baseline)[i].row.c_str(), col.overhead_pct[i]);
      }
      std::printf("]}%s\n", c + 1 < columns.size() ? "," : "");
    }
    std::printf("  ],\n  \"metrics\": %s\n}\n", bench_json::MetricsBlock().c_str());
  } else {
    std::printf("kR^X reproduction — speculation-hardening overhead (E21, %% over vanilla)\n\n");
    std::printf("%-22s", "Benchmark");
    for (const SpecColumn& col : columns) {
      std::printf(" %14s", col.name.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < baseline->size(); ++i) {
      std::printf("%-22s", (*baseline)[i].row.c_str());
      for (const SpecColumn& col : columns) {
        std::printf(" %13.2f%%", col.overhead_pct[i]);
      }
      std::printf("\n");
    }
    std::printf("\n%-22s", "Average");
    for (const SpecColumn& col : columns) {
      std::printf(" %13.2f%%", col.avg_overhead_pct);
    }
    std::printf("\n%-22s", "spec barriers/masks");
    for (const SpecColumn& col : columns) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu/%llu",
                    static_cast<unsigned long long>(col.spec_barriers),
                    static_cast<unsigned long long>(col.spec_masks));
      std::printf(" %14s", buf);
    }
    std::printf("\n%-22s", "transient leak");
    for (const SpecColumn& col : columns) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu/%zu B",
                    static_cast<unsigned long long>(col.leaked_bytes), attack_bytes);
      std::printf(" %14s", buf);
    }
    std::printf("\n\n(spec-barrier pays one lfence per check; spec-mask replaces the trap\n"
                "with a branchless clamp — both drive the residual transient leak to 0.)\n");
  }

  // The artifact is only healthy if the hardening actually holds.
  for (const SpecColumn& col : columns) {
    const bool hardened = col.name != "sfi-o3";
    if (hardened && col.leaked_bytes != 0) {
      std::fprintf(stderr, "%s leaked %llu bytes — hardening failed\n", col.name.c_str(),
                   static_cast<unsigned long long>(col.leaked_bytes));
      return 1;
    }
    if (!hardened && col.leaked_bytes == 0) {
      std::fprintf(stderr, "%s leaked nothing — adversary broken\n", col.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Run(argc, argv); }
