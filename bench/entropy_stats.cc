// E5 — Reproduces the diversification statistics of §5.2.1 / §7.3: the share
// of single-basic-block routines (~12% in Linux v3.19), the per-routine
// randomization entropy floor (k = 30 bits by default => Psucc <= 1/2^30 for
// a precomputed intra-routine payload), phantom-block padding volume, and
// the function/gadget displacement check of §7.3.
#include <cmath>
#include <cstdio>

#include "src/attack/gadget_scanner.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

int Main() {
  std::printf("kR^X reproduction — diversification statistics (paper §5.2.1, §7.3)\n\n");
  const uint64_t seed = 0xD1CE;
  KernelSource src = MakeBenchSource(seed);

  // Shape of the corpus before diversification.
  size_t single_block = 0;
  for (const Function& fn : src.functions) {
    if (fn.blocks().size() == 1) {
      ++single_block;
    }
  }
  std::printf("corpus: %zu routines, %.1f%% single-basic-block (paper: ~12%% of Linux v3.19)\n",
              src.functions.size(),
              100.0 * static_cast<double>(single_block) /
                  static_cast<double>(src.functions.size()));

  for (int k : {10, 20, 30, 40}) {
    ProtectionConfig config = ProtectionConfig::DiversifyOnly(RaScheme::kNone, seed);
    config.entropy_bits_k = k;
    auto kernel = CompileKernel(src, {config, LayoutKind::kKrx});
    KRX_CHECK(kernel.ok());
    const KaslrStats& ks = kernel->stats.kaslr;
    std::printf("k=%2d: chunks/function avg %.1f, phantom blocks %llu, min entropy %.1f bits "
                "(Psucc <= %.2e)\n",
                k, static_cast<double>(ks.total_chunks) / static_cast<double>(ks.functions),
                static_cast<unsigned long long>(ks.phantom_blocks), ks.min_entropy_bits,
                std::pow(2.0, -ks.min_entropy_bits));
  }

  // Gadget displacement under two different seeds (paper: "no gadget
  // remained at its original location").
  auto build = [&](uint64_t s) {
    auto kernel = CompileKernel(src, {ProtectionConfig::DiversifyOnly(RaScheme::kNone, s), LayoutKind::kKrx});
    KRX_CHECK(kernel.ok());
    return std::move(*kernel);
  };
  CompiledKernel a = build(1), b = build(2);
  auto dump = [](CompiledKernel& kck) {
    const PlacedSection* t = kck.image->FindSection(".text");
    std::vector<uint8_t> bytes(t->size);
    KRX_CHECK(kck.image->PeekBytes(t->vaddr, bytes.data(), bytes.size()).ok());
    return std::pair<std::vector<uint8_t>, uint64_t>(std::move(bytes), t->vaddr);
  };
  auto [ta, base_a] = dump(a);
  auto [tb, base_b] = dump(b);
  GadgetScanner scanner;
  auto ga = scanner.Scan(ta.data(), ta.size(), 0);
  auto gb = scanner.Scan(tb.data(), tb.size(), 0);
  size_t same_offset = 0;
  size_t idx_b = 0;
  for (const Gadget& g : ga) {
    while (idx_b < gb.size() && gb[idx_b].address < g.address) {
      ++idx_b;
    }
    if (idx_b < gb.size() && gb[idx_b].address == g.address && gb[idx_b].insts == g.insts) {
      ++same_offset;
    }
  }
  std::printf("\ngadgets in build A: %zu, build B: %zu; identical gadget at identical offset: "
              "%zu (paper: none remain at predetermined locations)\n",
              ga.size(), gb.size(), same_offset);
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
