// E2 — Reproduces Table 2: Phoronix Test Suite overhead (% over the vanilla
// kernel) for the six full-protection columns.
//
//   table2_phoronix [--csv PATH] [--metrics-csv PATH]
//     --csv writes the matrix in long form (benchmark,metric,config,
//     measured_pct,paper_pct); --metrics-csv writes the post-run metrics
//     registry snapshot (deterministic: timing metrics excluded).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/telemetry/metrics.h"
#include "src/workload/phoronix.h"

namespace krx {
namespace {

void Cell(double measured, double paper) {
  char buf[40], m[16], p[16];
  if (measured < 0.05 && measured > -0.05) {
    std::snprintf(m, sizeof(m), "~0");
  } else {
    std::snprintf(m, sizeof(m), "%.2f", measured);
  }
  if (paper < 0.05 && paper > -0.05) {
    std::snprintf(p, sizeof(p), "~0");
  } else {
    std::snprintf(p, sizeof(p), "%.2f", paper);
  }
  std::snprintf(buf, sizeof(buf), "%s (%s)", m, p);
  std::printf(" %15s", buf);
}

int Main(const std::string& csv_path, const std::string& metrics_csv_path) {
  std::printf("kR^X reproduction — Table 2 (Phoronix Test Suite overhead, %% over vanilla)\n");
  std::printf("paper values in parentheses\n\n");

  auto matrix = RunTable2(/*seed=*/0x6b5258);
  if (!matrix.ok()) {
    std::fprintf(stderr, "harness failed: %s\n", matrix.status().ToString().c_str());
    return 1;
  }
  const auto& rows = PhoronixRows();

  std::printf("%-12s %-8s", "Benchmark", "Metric");
  for (const auto& col : matrix->column_names) {
    std::printf(" %15s", col.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < matrix->row_names.size(); ++i) {
    std::printf("%-12s %-8s", matrix->row_names[i].c_str(), rows[i].metric.c_str());
    for (size_t c = 0; c < matrix->column_names.size(); ++c) {
      Cell(matrix->percent[i][c], rows[i].paper[c]);
    }
    std::printf("\n");
  }
  std::printf("%-12s %-8s", "Average", "");
  const double paper_avg[kNumTable2Columns] = {2.15, 0.45, 4.04, 3.63, 2.32, 2.62};
  for (size_t c = 0; c < matrix->column_names.size(); ++c) {
    Cell(matrix->average[c], paper_avg[c]);
  }
  std::printf("\n\nHeadline result (§1): full protection %.2f%% (paper: 4.04%%), dropping to "
              "%.2f%% with MPX (paper: 2.32%%).\n",
              matrix->average[2], matrix->average[4]);

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    out << "benchmark,metric,config,measured_pct,paper_pct\n";
    for (size_t i = 0; i < matrix->row_names.size(); ++i) {
      for (size_t c = 0; c < matrix->column_names.size(); ++c) {
        char line[160];
        std::snprintf(line, sizeof(line), "%s,%s,%s,%.4f,%.2f\n", matrix->row_names[i].c_str(),
                      rows[i].metric.c_str(), matrix->column_names[c].c_str(),
                      matrix->percent[i][c], rows[i].paper[c]);
        out << line;
      }
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!metrics_csv_path.empty()) {
    std::ofstream out(metrics_csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_csv_path.c_str());
      return 1;
    }
    out << telemetry::MetricsRegistry::Global().SnapshotCsv(/*include_timing=*/false);
    std::printf("wrote %s\n", metrics_csv_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) {
  std::string csv, metrics_csv;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0 && i + 1 < argc) {
      metrics_csv = argv[++i];
    } else {
      std::fprintf(stderr, "usage: table2_phoronix [--csv PATH] [--metrics-csv PATH]\n");
      return 2;
    }
  }
  return krx::Main(csv, metrics_csv);
}
