// E17 — live re-randomization costs: stop-the-world epoch latency and the
// steady-state throughput tax of periodic epochs at several periods.
//
//   rerand_epoch [--quick] [--json] [--seed <seed>]
//
// Two measurements on one fully protected kernel (SFI + diversification +
// return-address encryption, kR^X-KAS layout) with the scheduler substrate
// loaded and both workers suspended mid-call-chain (so every epoch has live
// encrypted return addresses to rewrite):
//
//   1. STW latency: wall-clock stop-the-world time per epoch (min / mean /
//      max over N manual epochs), plus what each epoch did.
//   2. Steady state: ops/sec of a generated kernel op on a gated Cpu while
//      a timer thread fires epochs at 0 (off) / 100 / 25 / 10 ms periods;
//      overhead % is reported against the epoch-free run.
//   3. Tracing tax: the same STW measurement repeated under full telemetry
//      (metrics + event tracing, the mode krx_trace exports use). Gate:
//      the traced mean must stay within 2x the metrics-only mean (plus a
//      small absolute slack for sub-millisecond epochs) — tracing is
//      observability-only and must not dominate the epoch it observes.
//
// --json emits the BENCH_rerand.json artifact (tools/ci.sh, EXPERIMENTS.md
// E17). Exit 1 if the tracing gate fails.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/cpu/cpu.h"
#include "src/rerand/engine.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/corpus.h"
#include "src/workload/ops.h"
#include "src/workload/sched.h"

namespace krx {
namespace {

struct Env {
  CompiledKernel kernel;
  std::unique_ptr<Cpu> cpu;
  std::unique_ptr<RerandEngine> engine;
  uint64_t buf = 0;
};

Env MakeEnv(uint64_t seed) {
  KernelSource src = MakeBaseSource();
  AddSched(&src);
  OpProfile profile;
  profile.name = "probe";
  profile.coalescible_reads = 2;
  profile.chased_reads = 1;
  profile.writes = 1;
  profile.calls = 1;
  profile.leaf_depth = 2;
  EmitKernelOp(&src, profile);
  ProtectionConfig config = ProtectionConfig::Full(false, RaScheme::kEncrypt, seed);
  for (const std::string& name : SchedExemptFunctions()) {
    config.exempt_functions.insert(name);
  }
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  Env env{std::move(*kernel), nullptr, nullptr, 0};
  KRX_CHECK(SetUpTaskStacks(*env.kernel.image).ok());
  auto buf = SetUpOpBuffer(*env.kernel.image, seed);
  KRX_CHECK(buf.ok());
  env.buf = *buf;
  env.cpu = std::make_unique<Cpu>(env.kernel.image.get());
  env.engine = std::make_unique<RerandEngine>(&env.kernel);
  env.engine->RegisterCpu(env.cpu.get());
  env.engine->set_stack_range_provider(SchedLiveStackRanges);
  // Suspend both workers mid-call-chain: every epoch below rewrites live
  // encrypted return addresses, not an idle image.
  KRX_CHECK(env.cpu->CallFunction("sys_spawn", {0}).rax == 1);
  KRX_CHECK(env.cpu->CallFunction("sys_spawn", {1}).rax == 2);
  KRX_CHECK(env.cpu->CallFunction("sched_run", {16}).reason == StopReason::kReturned);
  return env;
}

struct StwStats {
  double min_ms = 0, mean_ms = 0, max_ms = 0;
  uint64_t functions = 0, keys = 0, stack_words = 0, epochs = 0;
};

StwStats MeasureStw(Env& env, int epochs) {
  StwStats s;
  s.min_ms = 1e9;
  for (int i = 0; i < epochs; ++i) {
    auto r = env.engine->RunEpoch();
    KRX_CHECK(r.ok());
    s.min_ms = std::min(s.min_ms, r->stw_ms);
    s.max_ms = std::max(s.max_ms, r->stw_ms);
    s.mean_ms += r->stw_ms;
    s.functions = r->functions_moved;
    s.keys = r->keys_rotated;
    s.stack_words += r->stack_words_rewritten;
    ++s.epochs;
  }
  s.mean_ms /= epochs;
  return s;
}

struct SteadyPoint {
  int period_ms = 0;  // 0 = epochs off
  double ops_per_sec = 0;
  double overhead_pct = 0;
  uint64_t epochs = 0;
};

// Runs the op back-to-back for a fixed wall-clock window (long enough to
// span many epoch periods) and reports the achieved throughput.
SteadyPoint MeasureSteady(Env& env, int period_ms, double window_sec) {
  const uint64_t before = env.engine->epochs_completed();
  if (period_ms > 0) env.engine->StartTimer(std::chrono::milliseconds(period_ms));
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(window_sec);
  uint64_t ops = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    RunResult r = env.cpu->CallFunction("sys_probe", {env.buf});
    KRX_CHECK(r.reason == StopReason::kReturned);
    ++ops;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (period_ms > 0) env.engine->StopTimer();
  SteadyPoint p;
  p.period_ms = period_ms;
  p.ops_per_sec = static_cast<double>(ops) / std::chrono::duration<double>(t1 - t0).count();
  p.epochs = env.engine->epochs_completed() - before;
  return p;
}

int Run(int argc, char** argv) {
  bool quick = false, json = false;
  uint64_t seed = 0xE17;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json] [--seed <seed>]\n", argv[0]);
      return 2;
    }
  }

  Env env = MakeEnv(seed);
  const int stw_epochs = quick ? 5 : 25;
  const double window_sec = quick ? 0.5 : 2.0;
  telemetry::SetMode(telemetry::kModeMetrics);
  StwStats stw = MeasureStw(env, stw_epochs);

  // Tracing tax: the identical STW workload under metrics + event tracing.
  // Every epoch emits kRerandStep records per phase, so the traced mean is
  // an upper bound on what a production trace capture costs an epoch.
  telemetry::SetMode(telemetry::kModeMetrics | telemetry::kModeTrace);
  StwStats stw_traced = MeasureStw(env, stw_epochs);
  telemetry::SetMode(telemetry::kModeMetrics);
  constexpr double kTraceGateRatio = 2.0;
  constexpr double kTraceGateSlackMs = 0.5;
  const double trace_bound_ms = stw.mean_ms * kTraceGateRatio + kTraceGateSlackMs;
  const bool trace_gate_ok = stw_traced.mean_ms <= trace_bound_ms;

  const int periods[] = {0, 100, 25, 10};
  std::vector<SteadyPoint> steady;
  for (int period : periods) {
    steady.push_back(MeasureSteady(env, period, window_sec));
  }
  for (SteadyPoint& p : steady) {
    p.overhead_pct = 100.0 * (steady[0].ops_per_sec / p.ops_per_sec - 1.0);
  }

  if (json) {
    std::printf("{\n  \"meta\": %s,\n",
                bench_json::MetaBlock("rerand_epoch", seed, "full+encrypt", "krx").c_str());
    std::printf("  \"stw_ms\": {\"min\": %.3f, \"mean\": %.3f, \"max\": %.3f, \"epochs\": %llu},\n",
                stw.min_ms, stw.mean_ms, stw.max_ms, static_cast<unsigned long long>(stw.epochs));
    std::printf("  \"per_epoch\": {\"functions_moved\": %llu, \"keys_rotated\": %llu, "
                "\"stack_words_rewritten\": %llu},\n",
                static_cast<unsigned long long>(stw.functions),
                static_cast<unsigned long long>(stw.keys),
                static_cast<unsigned long long>(stw.stack_words));
    std::printf("  \"steady_state\": [\n");
    for (size_t i = 0; i < steady.size(); ++i) {
      const SteadyPoint& p = steady[i];
      std::printf("    {\"period_ms\": %d, \"ops_per_sec\": %.1f, \"overhead_pct\": %.2f, "
                  "\"epochs\": %llu}%s\n",
                  p.period_ms, p.ops_per_sec, p.overhead_pct,
                  static_cast<unsigned long long>(p.epochs), i + 1 < steady.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"tracing\": {\"metrics_stw_mean_ms\": %.3f, \"full_stw_mean_ms\": %.3f, "
                "\"gate_bound_ms\": %.3f, \"gate_ok\": %s},\n",
                stw.mean_ms, stw_traced.mean_ms, trace_bound_ms,
                trace_gate_ok ? "true" : "false");
    std::printf("  \"metrics\": %s\n}\n", bench_json::MetricsBlock().c_str());
    return trace_gate_ok ? 0 : 1;
  }

  std::printf("kR^X reproduction — live re-randomization cost (E17)\n\n");
  std::printf("[stop-the-world latency, %d epochs on a live image]\n", stw_epochs);
  std::printf("  stw: min %.3f ms  mean %.3f ms  max %.3f ms\n", stw.min_ms, stw.mean_ms,
              stw.max_ms);
  std::printf("  per epoch: %llu functions moved, %llu keys rotated; %llu live return\n"
              "  addresses re-encrypted in total\n\n",
              static_cast<unsigned long long>(stw.functions),
              static_cast<unsigned long long>(stw.keys),
              static_cast<unsigned long long>(stw.stack_words));
  std::printf("[steady state, %.1f s window per period]\n", window_sec);
  std::printf("  %-10s %14s %10s %8s\n", "period", "ops/sec", "overhead", "epochs");
  for (const SteadyPoint& p : steady) {
    char label[16];
    if (p.period_ms == 0) {
      std::snprintf(label, sizeof label, "off");
    } else {
      std::snprintf(label, sizeof label, "%d ms", p.period_ms);
    }
    std::printf("  %-10s %14.1f %9.2f%% %8llu\n", label, p.ops_per_sec, p.overhead_pct,
                static_cast<unsigned long long>(p.epochs));
  }
  std::printf("\n[tracing tax, %d epochs each]\n", stw_epochs);
  std::printf("  stw mean: metrics-only %.3f ms, full tracing %.3f ms (bound %.3f ms) — %s\n",
              stw.mean_ms, stw_traced.mean_ms, trace_bound_ms,
              trace_gate_ok ? "OK" : "GATE FAILED");
  std::printf("\n(Shorter periods buy a smaller JIT-ROP window at a throughput tax; the\n"
              "epoch itself is dominated by the text rebuild + verify pass.)\n");
  return trace_gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Run(argc, argv); }
