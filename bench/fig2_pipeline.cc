// E3 — Reproduces Figure 2: the range-check optimization pipeline
// (O0 -> O1 -> O2 -> O3 -> MPX) applied to the paper's example routine,
// nhm_uncore_msr_enable_event(); and Figure 3: the two decoy prologue
// variants plus the return-address encryption instrumentation.
#include <cstdio>

#include "src/base/rng.h"
#include "src/plugin/pipeline.h"
#include "src/workload/fig2.h"

namespace krx {
namespace {

void Show(const char* title, const Function& fn) {
  std::printf("---- %s ----\n%s\n", title, fn.ToString().c_str());
}

int Main() {
  std::printf("kR^X reproduction — Figure 2: range-check optimization phases\n\n");
  Show("(e) original (vanilla)", MakeFig2Function());

  const int64_t edata = ComputeEdata(kDefaultPhantomGuardSize);
  struct Stage {
    const char* title;
    ProtectionConfig config;
  };
  const Stage stages[] = {
      {"(a) kR^X-SFI O0: wrapped [pushfq; lea; cmp; ja; popfq]",
       ProtectionConfig::SfiOnly(SfiLevel::kO0)},
      {"(b) O1: pushfq/popfq elimination (kept only where %rflags is live)",
       ProtectionConfig::SfiOnly(SfiLevel::kO1)},
      {"(c) O2: lea elimination (cmp $(edata-disp), %base)",
       ProtectionConfig::SfiOnly(SfiLevel::kO2)},
      {"(d) O3: cmp/ja coalescing (single check at max displacement 0x154)",
       ProtectionConfig::SfiOnly(SfiLevel::kO3)},
      {"(e) kR^X-MPX: bndcu conversion", ProtectionConfig::MpxOnly()},
  };
  for (const Stage& stage : stages) {
    Function fn = MakeFig2Function();
    SymbolTable symbols;
    int32_t handler = symbols.Intern(kKrxHandlerName);
    SfiStats stats;
    Status s = ApplySfiPass(fn, stage.config, handler, edata, &stats);
    if (!s.ok()) {
      std::fprintf(stderr, "pass failed: %s\n", s.ToString().c_str());
      return 1;
    }
    Show(stage.title, fn);
    std::printf("    checks=%llu coalesced=%llu wrappers kept=%llu eliminated=%llu\n\n",
                static_cast<unsigned long long>(stats.checks_emitted),
                static_cast<unsigned long long>(stats.checks_coalesced),
                static_cast<unsigned long long>(stats.wrappers_kept),
                static_cast<unsigned long long>(stats.wrappers_eliminated));
  }

  std::printf("\nkR^X reproduction — Figure 3: return-address decoy prologues\n\n");
  DecoyStats dstats;
  for (uint64_t seed = 0; dstats.variant_a_functions == 0 || dstats.variant_b_functions == 0;
       ++seed) {
    Function fn = MakeFig2Function();
    Rng rng(seed);
    DecoyStats before = dstats;
    if (!ApplyRaDecoyPass(fn, rng, &dstats).ok()) {
      return 1;
    }
    if (dstats.variant_a_functions > before.variant_a_functions &&
        before.variant_a_functions == 0) {
      Show("(a) decoy below the return address (push %r11)", fn);
    }
    if (dstats.variant_b_functions > before.variant_b_functions &&
        before.variant_b_functions == 0) {
      Show("(b) return address relocated above the decoy", fn);
    }
  }

  std::printf("\nReturn-address encryption (scheme X, §5.2.2)\n\n");
  {
    Function fn = MakeFig2Function();
    SymbolTable symbols;
    XkeyLayout xkeys;
    if (!ApplyRaEncryptPass(fn, symbols, &xkeys).ok()) {
      return 1;
    }
    Show("X: mov xkey(%rip),%r11; xor %r11,(%rsp) at prologue/epilogue", fn);
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main() { return krx::Main(); }
