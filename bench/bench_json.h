// Shared pieces of the BENCH_*.json artifacts.
//
// Every artifact opens with the same "meta" block so downstream tooling can
// key on {bench, seed, config, layout, timestamp} without per-bench parsers,
// and carries a "metrics" section snapshotted from the process-wide
// MetricsRegistry. Timestamps are real wall clock (artifacts are run
// records, not golden files); the deterministic subset of the registry is
// what tests/telemetry_test.cc pins down instead.
#ifndef KRX_BENCH_BENCH_JSON_H_
#define KRX_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>

#include "src/telemetry/metrics.h"

namespace krx {
namespace bench_json {

// UTC wall clock at call time, ISO 8601: "2026-08-06T12:34:56Z".
inline std::string TimestampUtc() {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

// The common metadata object, as one line:
//   {"bench": "...", "seed": "0x...", "config": "...", "layout": "...",
//    "timestamp": "..."}
// `config` names the protection matrix the bench ran ("vanilla..sfi-o3",
// "full", ...); `layout` the text layout ("krx", "vanilla", "mixed").
inline std::string MetaBlock(const std::string& bench, uint64_t seed,
                             const std::string& config, const std::string& layout) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"%s\", \"seed\": \"0x%llx\", \"config\": \"%s\", "
                "\"layout\": \"%s\", \"timestamp\": \"%s\"}",
                bench.c_str(), static_cast<unsigned long long>(seed), config.c_str(),
                layout.c_str(), TimestampUtc().c_str());
  return buf;
}

// The registry snapshot for the artifact's "metrics" key. Every line is
// prefixed with `indent` so the object nests cleanly.
inline std::string MetricsBlock(const std::string& indent = "  ") {
  return telemetry::MetricsRegistry::Global().SnapshotJson(/*include_timing=*/true, indent);
}

}  // namespace bench_json
}  // namespace krx

#endif  // KRX_BENCH_BENCH_JSON_H_
